//! A tiny JSON value, parser, and writer.
//!
//! The workspace's `serde` resolves to the inert offline shim (see
//! `crates/shims/README.md`), so the serve wire protocol and the batch
//! job files are handled by this hand-rolled implementation instead.
//! It covers the full JSON grammar the server speaks: objects, arrays,
//! strings with escapes, numbers, booleans, and null.

/// A parsed JSON value. Objects keep insertion order (the writer emits
/// fields in the order they were built, which keeps responses diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder: `Json::obj([("k", v), ...])`.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value (exact up to 2^53).
    pub fn uint(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Renders as a single-line JSON document (`to_string` serializes).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("short \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through verbatim).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("op", Json::str("submit")),
            ("key", Json::str("hic1;app=FFT;x=\"quoted\\path\"\n")),
            ("priority", Json::Num(-3.0)),
            ("cached", Json::Bool(true)),
            (
                "items",
                Json::Arr(vec![Json::Null, Json::uint(42), Json::Num(1.5)]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(back.get("priority").and_then(Json::as_i64), Some(-3));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\t\" ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1],
            Json::Str("é\t".into())
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::uint(1234567).to_string(), "1234567");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
