//! Job bookkeeping: what a client submitted, where it is in its
//! lifecycle, and what came out.

use std::sync::Arc;
use std::time::Duration;

use hic_runtime::{RunRequest, Scheme};

use crate::json::Json;

/// Server-assigned job identifier.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Claimed by a worker, simulation in flight.
    Running,
    /// Finished (successfully or with a typed per-job failure); the
    /// outcome is available.
    Done,
    /// Removed from the queue before a worker claimed it.
    Cancelled,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// The result of one finished job — everything a figure row needs, in a
/// form the cache can hand back verbatim to an identical resubmission.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The request's canonical key ([`RunRequest::cache_key`]).
    pub key: String,
    pub app: String,
    /// Scheme name (`"B+M+I"`, `"Addr+L"`, ...).
    pub scheme: String,
    /// `"intra"` or `"inter"`.
    pub family: &'static str,
    pub scale: &'static str,
    /// Simulated result matched the app's host reference.
    pub correct: bool,
    /// Human-readable note from the app (residuals, sizes, ...), or the
    /// failure description.
    pub detail: String,
    /// Simulated cycles (up to the failure point for failed runs).
    pub cycles: u64,
    /// Flit totals of the run, `[linefill, writeback, invalidation,
    /// memory, l2l3, sync]`.
    pub traffic: [u64; 6],
    /// Sanitizer findings observed (0 unless the request asked to check).
    pub findings: u64,
    /// Typed failure tag (`"hang"`, `"corrupt_dirty_line"`, ...), or the
    /// server-side tags `"unknown_app"` / `"panic"`. `None` on success.
    pub error: Option<String>,
    /// Host wall-clock the worker spent on the run.
    pub wall: Duration,
    /// How many times the worker ran the job (1 = first try stuck).
    /// Only nondeterministic failures (hang, thread death, panic) are
    /// retried; deterministic outcomes never re-run.
    pub attempts: u32,
    /// Total host milliseconds the worker slept backing off between
    /// attempts (0 when `attempts == 1`).
    pub backoff_ms: u64,
}

impl JobOutcome {
    /// Build an outcome from a finished application run.
    pub fn from_app_run(req: &RunRequest, run: &hic_apps::AppRun, wall: Duration) -> JobOutcome {
        let t = &run.stats.traffic;
        JobOutcome {
            key: req.cache_key(),
            app: req.app.clone(),
            scheme: req.config.scheme().name().to_string(),
            family: family(req.config.scheme()),
            scale: req.scale.name(),
            correct: run.correct,
            detail: run.detail.clone(),
            cycles: run.stats.total_cycles,
            traffic: [
                t.linefill,
                t.writeback,
                t.invalidation,
                t.memory,
                t.l2l3,
                t.sync,
            ],
            findings: run.diagnostics.findings.len() as u64,
            error: run.error.as_ref().map(|e| e.kind().to_string()),
            wall,
            attempts: 1,
            backoff_ms: 0,
        }
    }

    /// An outcome for a job that never produced an `AppRun` (unknown
    /// app name, or the worker caught a panic).
    pub fn failed(req: &RunRequest, tag: &str, detail: String, wall: Duration) -> JobOutcome {
        JobOutcome {
            key: req.cache_key(),
            app: req.app.clone(),
            scheme: req.config.scheme().name().to_string(),
            family: family(req.config.scheme()),
            scale: req.scale.name(),
            correct: false,
            detail,
            cycles: 0,
            traffic: [0; 6],
            findings: 0,
            error: Some(tag.to_string()),
            wall,
            attempts: 1,
            backoff_ms: 0,
        }
    }

    /// Deterministic outcomes are safe to re-serve from the cache: the
    /// result is a pure function of the request. Nondeterministic
    /// failures — watchdog kills and host-thread deaths, both functions
    /// of host timing — must re-run on resubmission, as must panics.
    pub fn cacheable(&self) -> bool {
        !matches!(
            self.error.as_deref(),
            Some("hang") | Some("thread_died") | Some("panic")
        )
    }

    /// Render as the wire/report JSON object.
    pub fn to_json(&self, cached: bool) -> Json {
        Json::obj([
            ("key", Json::str(&*self.key)),
            ("app", Json::str(&*self.app)),
            ("scheme", Json::str(&*self.scheme)),
            ("family", Json::str(self.family)),
            ("scale", Json::str(self.scale)),
            ("correct", Json::Bool(self.correct)),
            ("detail", Json::str(&*self.detail)),
            ("cycles", Json::uint(self.cycles)),
            (
                "traffic",
                Json::Arr(self.traffic.iter().map(|&v| Json::uint(v)).collect()),
            ),
            ("findings", Json::uint(self.findings)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(&**e),
                    None => Json::Null,
                },
            ),
            ("wall_ms", Json::uint(self.wall.as_millis() as u64)),
            ("attempts", Json::uint(self.attempts as u64)),
            ("backoff_ms", Json::uint(self.backoff_ms)),
            ("cached", Json::Bool(cached)),
        ])
    }
}

fn family(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Intra(_) => "intra",
        Scheme::Inter(_) => "inter",
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: JobId,
    pub request: RunRequest,
    pub priority: i64,
    pub state: JobState,
    /// Set when `state == Done`.
    pub outcome: Option<Arc<JobOutcome>>,
    /// The outcome was served from the result cache.
    pub cached: bool,
}
