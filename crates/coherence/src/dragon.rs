//! Update-based Dragon coherence, flat (one block) or hierarchical
//! (blocks + L3) — the second citizen of the protocol zoo next to
//! [`crate::MesiSystem`].
//!
//! Where MESI *invalidates* other copies on a write, Dragon *updates*
//! them: a store to a shared line broadcasts the written word to every
//! sharer, which patches its copy in place. Readers therefore never miss
//! on a line they already hold — the classic trade: updates spend
//! coherence-control bandwidth on every shared store to save the
//! invalidate-plus-refetch round trips MESI pays on every reader.
//!
//! States per L1 line (absent = invalid):
//!
//! * `E` / `M` — exclusive clean / exclusive dirty, exactly as in MESI
//!   (private lines are write-back; E upgrades to M silently).
//! * `Sm` — shared, this core performed the last broadcast write.
//! * `Sc` — shared clean copy, patched in place by other cores' updates.
//!
//! In the directory organization (no snooping bus), the shared levels
//! play the `Sm` role for data: a broadcast write deposits the word
//! *dirty* in the line's home L2 bank (and, when other blocks share the
//! line, writes through to the home L3 bank), so every L1 copy — the
//! writer's included — stays clean and byte-identical. The invariants:
//!
//! * all resident copies of a line hold identical words at all times;
//! * only E/M lines carry dirty words in an L1;
//! * `l3_dir` owner marks the one block whose L2 may be newer than L3
//!   (set on exclusive fills and on block-local broadcast writes).
//!
//! A broadcast write that finds no other sharer anywhere converts the
//! line back to `M` (the directory round discovered the line is private
//! again), restoring zero-cost private writes.
//!
//! Timing mirrors MESI: a round completes when the farthest target
//! acknowledges (max over fan-out legs) while traffic counts every
//! message. Update messages carry one word (2 flits) and are recorded
//! under the `Invalidation` category — the coherence-control column of
//! paper Figure 10 — so the incoherent-vs-MESI-vs-Dragon matrix compares
//! like with like.

use fxhash::FxHashMap;

use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::cache::EvictedLine;
use hic_mem::{Cache, LineAddr, Memory, Word, WordAddr};
use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::{CoreId, MachineConfig};

/// Per-L1-line Dragon state. Absent from the map = Invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dragon {
    /// Exclusive clean.
    E,
    /// Shared clean (kept current by update broadcasts).
    Sc,
    /// Shared, last writer (data authority is the home L2/L3 copy).
    Sm,
    /// Modified exclusive (write-back, as in MESI).
    M,
}

impl Dragon {
    fn is_shared(self) -> bool {
        matches!(self, Dragon::Sc | Dragon::Sm)
    }
}

/// Directory entry: full map over the children of this level
/// (cores of a block at L2; blocks of the chip at L3).
#[derive(Debug, Clone, Default)]
struct DirEntry {
    /// Bitmask of children holding the line.
    sharers: u64,
    /// Child holding the line exclusively (E or M at L2; possibly-newer
    /// L2 data at L3), if any.
    owner: Option<usize>,
}

impl DirEntry {
    fn add(&mut self, i: usize) {
        self.sharers |= 1 << i;
    }
    fn remove(&mut self, i: usize) {
        self.sharers &= !(1 << i);
        if self.owner == Some(i) {
            self.owner = None;
        }
    }
    fn holds(&self, i: usize) -> bool {
        self.sharers & (1 << i) != 0
    }
    fn others(&self, i: usize) -> Vec<usize> {
        (0..64)
            .filter(|&j| j != i && self.sharers & (1 << j) != 0)
            .collect()
    }
    fn is_empty(&self) -> bool {
        self.sharers == 0
    }
}

/// The update-based hardware-coherent memory system.
#[derive(Debug)]
pub struct DragonSystem {
    cfg: MachineConfig,
    mesh: Mesh,
    cpb: usize,
    bpb: usize,
    /// Per-core private L1.
    l1: Vec<Cache>,
    /// Per-core Dragon state per resident line.
    l1_state: Vec<FxHashMap<u64, Dragon>>,
    /// L2 banks, global index `block * bpb + bank`.
    l2: Vec<Cache>,
    /// Per-block directory over that block's cores.
    l2_dir: Vec<FxHashMap<u64, DirEntry>>,
    /// L3 banks (hierarchical machine only).
    l3: Vec<Cache>,
    /// Directory over blocks (hierarchical machine only).
    l3_dir: FxHashMap<u64, DirEntry>,
    mem: Memory,
    /// Flit ledger.
    pub traffic: TrafficLedger,
}

impl DragonSystem {
    pub fn new(cfg: MachineConfig) -> DragonSystem {
        let ncores = cfg.num_cores();
        let nblocks = cfg.num_blocks();
        let cpb = cfg.cores_per_block();
        let bpb = cfg.l2_banks_per_block();
        let l3 = cfg.l3();
        let l3_banks = l3.map(|l| l.banks).unwrap_or(0);
        DragonSystem {
            mesh: Mesh::for_config(&cfg),
            cpb,
            bpb,
            l1: (0..ncores).map(|_| Cache::new(cfg.l1)).collect(),
            l1_state: vec![FxHashMap::default(); ncores],
            l2: (0..nblocks * bpb).map(|_| Cache::new(cfg.l2)).collect(),
            l2_dir: vec![FxHashMap::default(); nblocks],
            l3: (0..l3_banks)
                .map(|_| Cache::new(l3.expect("l3_banks > 0 implies an L3").geometry))
                .collect(),
            l3_dir: FxHashMap::default(),
            mem: Memory::new(),
            traffic: TrafficLedger::new(),
            cfg,
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    #[inline]
    fn block_of(&self, c: CoreId) -> usize {
        c.0 / self.cpb
    }

    #[inline]
    fn local_idx(&self, c: CoreId) -> usize {
        c.0 % self.cpb
    }

    /// Global L2 bank index of a line's home within `blk`.
    #[inline]
    fn home_bank(&self, blk: usize, line: LineAddr) -> usize {
        blk * self.bpb + (line.0 as usize % self.bpb)
    }

    /// Mesh tile of a global L2 bank (banks are colocated with core tiles).
    #[inline]
    fn bank_tile(&self, global_bank: usize) -> usize {
        let blk = global_bank / self.bpb;
        let bank = global_bank % self.bpb;
        blk * self.cpb + bank
    }

    #[inline]
    fn core_tile_of_local(&self, blk: usize, local: usize) -> usize {
        blk * self.cpb + local
    }

    fn is_hier(&self) -> bool {
        !self.l3.is_empty()
    }

    #[inline]
    fn l3_bank(&self, line: LineAddr) -> usize {
        line.0 as usize % self.l3.len()
    }

    /// Round trip of a local L3 bank access (0 on flat machines, which
    /// never reach an L3 path).
    #[inline]
    fn l3_rt(&self) -> u64 {
        self.cfg.l3().map(|l| l.rt).unwrap_or(0)
    }

    /// RT from a core tile to a corner-resident L3 bank.
    fn rt_core_to_l3(&self, tile: usize, l3b: usize) -> u64 {
        self.mesh.rt_latency_to_corner(tile, l3b)
    }

    /// Flits of one single-word update message.
    fn update_flits(&self) -> u64 {
        self.cfg.flits_for(self.cfg.word_bytes)
    }

    // ------------------------------------------------------------------
    // L1 side
    // ------------------------------------------------------------------

    fn l1_state_of(&self, c: CoreId, line: LineAddr) -> Option<Dragon> {
        self.l1_state[c.0].get(&line.0).copied()
    }

    /// Install a line in an L1 with the given state, handling the victim.
    fn l1_fill(&mut self, c: CoreId, line: LineAddr, data: [Word; WORDS_PER_LINE], st: Dragon) {
        if let Some(victim) = self.l1[c.0].fill(line, data, 0) {
            self.l1_evict(c, victim);
        }
        self.l1_state[c.0].insert(line.0, st);
    }

    /// Handle an L1 eviction: write dirty data back to the home L2 bank
    /// (only E/M lines can be dirty — shared copies are kept clean by the
    /// broadcast write-through), or send a replacement hint, and update
    /// the directory.
    fn l1_evict(&mut self, c: CoreId, victim: EvictedLine) {
        let line = victim.addr;
        let st = self.l1_state[c.0].remove(&line.0);
        debug_assert!(st.is_some(), "evicted line had no state");
        let blk = self.block_of(c);
        if victim.dirty != 0 {
            debug_assert!(
                matches!(st, Some(Dragon::E | Dragon::M)),
                "shared Dragon copies must stay clean"
            );
            let hb = self.home_bank(blk, line);
            let merged = self.l2[hb].merge_words(line, &victim.data, victim.dirty);
            debug_assert!(merged, "L2 must be inclusive of its L1s");
            let bytes = victim.dirty_words() as usize * 4;
            self.traffic
                .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
        } else {
            // Replacement hint keeps the full-map directory exact (and
            // stops updates to a line nobody holds any more).
            self.traffic.add(TrafficCategory::Writeback, 1);
        }
        let local = self.local_idx(c);
        if let Some(e) = self.l2_dir[blk].get_mut(&line.0) {
            e.remove(local);
            if e.is_empty() {
                self.l2_dir[blk].remove(&line.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // Block-level acquisition (same shapes as MESI: misses fetch through
    // the hierarchy; only the write path differs between the protocols)
    // ------------------------------------------------------------------

    /// Ensure the block's L2 holds a readable copy of `line`; returns extra
    /// latency beyond the home-bank round trip.
    fn ensure_block_readable(&mut self, blk: usize, line: LineAddr) -> u64 {
        let hb = self.home_bank(blk, line);
        if self.l2[hb].probe(line).is_hit() {
            return 0;
        }
        let hb_tile = self.bank_tile(hb);
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            let mut lat = self.rt_core_to_l3(hb_tile, l3b) + self.l3_rt();
            // Recall a block whose L2 may be newer than L3, if any.
            let owner_blk = self.l3_dir.get(&line.0).and_then(|e| e.owner);
            if let Some(b) = owner_blk {
                if b != blk {
                    lat += self.recall_block_to_l3(b, line, l3b);
                }
            }
            // L3 fill from memory if needed (memory sits at the corners).
            if !self.l3[l3b].probe(line).is_hit() {
                lat += self.cfg.mem_rt;
                let data = self.mem.read_line(line);
                self.traffic
                    .add(TrafficCategory::Memory, self.cfg.line_flits());
                if let Some(v) = self.l3[l3b].fill(line, data, 0) {
                    self.l3_evict(v);
                }
            }
            // Transfer L3 -> L2 and record the block as a sharer.
            let data = *self.l3[l3b].view(line).expect("just ensured").data;
            self.traffic
                .add(TrafficCategory::L2L3, self.cfg.line_flits());
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.l2_evict(blk, v);
            }
            self.l3_dir.entry(line.0).or_default().add(blk);
            lat
        } else {
            // Flat machine: fetch from memory at the nearest corner.
            let corner = self.mesh.nearest_corner(hb_tile);
            let lat = self.mesh.rt_latency_to_corner(hb_tile, corner) + self.cfg.mem_rt;
            let data = self.mem.read_line(line);
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.line_flits());
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.l2_evict(blk, v);
            }
            lat
        }
    }

    /// Pull a possibly-newer line from `owner_blk`'s L2 down into L3 and
    /// clear the block-ownership mark. Returns the latency of the recall.
    fn recall_block_to_l3(&mut self, owner_blk: usize, line: LineAddr, l3b: usize) -> u64 {
        let hb = self.home_bank(owner_blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = self.rt_core_to_l3(hb_tile, l3b) + self.cfg.l2_rt;
        // First pull any L1 owner inside that block into its L2.
        lat += self.pull_local_owner(owner_blk, line, hb, None);
        // Then copy dirty words (if any) from L2 into L3.
        let (data, dirty) = match self.l2[hb].view(line) {
            Some(v) => (*v.data, v.dirty),
            None => {
                // The block's L2 lost the line via eviction (which already
                // wrote it back); nothing to transfer.
                self.l3_dir.entry(line.0).or_default().owner = None;
                return lat;
            }
        };
        if dirty != 0 {
            let bytes = dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
            let merged = self.l3[l3b].merge_words(line, &data, dirty);
            debug_assert!(merged, "L3 must be inclusive of L2s");
            self.l2[hb].clean_line(line);
        } else {
            self.traffic.add(TrafficCategory::Invalidation, 2);
        }
        if let Some(e) = self.l3_dir.get_mut(&line.0) {
            e.owner = None;
        }
        lat
    }

    /// If an L1 inside `blk` holds the line exclusively (E/M), push its
    /// dirty words into the block's L2 and downgrade it to `Sc` — under
    /// Dragon the previous owner *keeps* its copy and simply joins the
    /// sharer set (it will receive updates from now on). Returns latency.
    ///
    /// When the requesting core is known, the data is forwarded directly
    /// owner -> requester (three-hop protocol): the returned latency is
    /// the *extra* beyond the home round trip the caller already charged.
    fn pull_local_owner(
        &mut self,
        blk: usize,
        line: LineAddr,
        hb: usize,
        requester: Option<CoreId>,
    ) -> u64 {
        let owner = match self.l2_dir[blk].get(&line.0).and_then(|e| e.owner) {
            Some(o) => o,
            None => return 0,
        };
        let hb_tile = self.bank_tile(hb);
        let o_tile = self.core_tile_of_local(blk, owner);
        let lat = match requester {
            // Three-hop: home -> owner probe, owner lookup, owner ->
            // requester data; minus the home -> requester return leg the
            // caller's round-trip baseline already includes.
            Some(c) => (self.mesh.latency(hb_tile, o_tile)
                + self.cfg.l1_rt
                + self.mesh.latency(o_tile, c.0))
            .saturating_sub(self.mesh.latency(hb_tile, c.0)),
            // Four-hop recall through the home (cross-level rounds).
            None => self.mesh.rt_latency(hb_tile, o_tile) + self.cfg.l1_rt,
        };
        let c = CoreId(blk * self.cpb + owner);
        let view = self.l1[c.0].view(line).expect("owner must hold the line");
        let (data, dirty) = (*view.data, view.dirty);
        // The probe/ack pair is coherence-control traffic; dirty data
        // additionally rides back as a writeback.
        self.traffic.add(TrafficCategory::Invalidation, 2);
        if dirty != 0 {
            let bytes = dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
            let merged = self.l2[hb].merge_words(line, &data, dirty);
            debug_assert!(merged, "L2 must be inclusive of its L1s");
        }
        self.l1[c.0].clean_line(line);
        self.l1_state[c.0].insert(line.0, Dragon::Sc);
        self.l2_dir[blk].get_mut(&line.0).unwrap().owner = None;
        lat
    }

    // ------------------------------------------------------------------
    // Evictions at L2 / L3 (inclusivity recalls)
    // ------------------------------------------------------------------

    fn l2_evict(&mut self, blk: usize, mut victim: EvictedLine) {
        let line = victim.addr;
        // Recall every L1 copy in the block.
        if let Some(e) = self.l2_dir[blk].remove(&line.0) {
            for local in e.others(usize::MAX) {
                let c = CoreId(blk * self.cpb + local);
                if let Some(inv) = self.l1[c.0].invalidate(line) {
                    if inv.dirty != 0 {
                        for w in 0..WORDS_PER_LINE {
                            if inv.dirty & (1 << w) != 0 {
                                victim.data[w] = inv.data[w];
                            }
                        }
                        victim.dirty |= inv.dirty;
                        let bytes = inv.dirty_words() as usize * 4;
                        self.traffic
                            .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
                    }
                }
                self.l1_state[c.0].remove(&line.0);
                self.traffic.add(TrafficCategory::Invalidation, 2);
            }
        }
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            if victim.dirty != 0 {
                let bytes = victim.dirty.count_ones() as usize * 4;
                self.traffic
                    .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
                let merged = self.l3[l3b].merge_words(line, &victim.data, victim.dirty);
                debug_assert!(merged, "L3 inclusive of L2");
            }
            if let Some(e) = self.l3_dir.get_mut(&line.0) {
                e.remove(blk);
                if e.is_empty() {
                    self.l3_dir.remove(&line.0);
                }
            }
        } else if victim.dirty != 0 {
            let bytes = victim.dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.flits_for(bytes));
            self.mem.merge_words(line, &victim.data, victim.dirty);
        }
    }

    fn l3_evict(&mut self, mut victim: EvictedLine) {
        let line = victim.addr;
        if let Some(e) = self.l3_dir.remove(&line.0) {
            for blk in e.others(usize::MAX) {
                let hb = self.home_bank(blk, line);
                self.pull_local_owner(blk, line, hb, None);
                // Drop every L1 sharer, then the L2 copy.
                if let Some(de) = self.l2_dir[blk].remove(&line.0) {
                    for local in de.others(usize::MAX) {
                        let c = CoreId(blk * self.cpb + local);
                        self.l1[c.0].invalidate(line);
                        self.l1_state[c.0].remove(&line.0);
                        self.traffic.add(TrafficCategory::Invalidation, 2);
                    }
                }
                if let Some(inv) = self.l2[hb].invalidate(line) {
                    if inv.dirty != 0 {
                        for w in 0..WORDS_PER_LINE {
                            if inv.dirty & (1 << w) != 0 {
                                victim.data[w] = inv.data[w];
                            }
                        }
                        victim.dirty |= inv.dirty;
                        let bytes = inv.dirty_words() as usize * 4;
                        self.traffic
                            .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
                    }
                }
                self.traffic.add(TrafficCategory::Invalidation, 2);
            }
        }
        if victim.dirty != 0 {
            let bytes = victim.dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.flits_for(bytes));
            self.mem.merge_words(line, &victim.data, victim.dirty);
        }
    }

    // ------------------------------------------------------------------
    // The update broadcast (Dragon's replacement for MESI's
    // invalidation round)
    // ------------------------------------------------------------------

    /// Broadcast the written word to every other copy of `line` and
    /// deposit it in the shared levels. Returns `(latency, had_sharers)`;
    /// with no other sharer anywhere the caller converts the line to `M`.
    fn update_others(&mut self, c: CoreId, line: LineAddr, idx: usize, v: Word) -> (u64, bool) {
        let blk = self.block_of(c);
        let local = self.local_idx(c);
        let hb = self.home_bank(blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = 0;
        let mut had_sharers = false;

        let mut one = [0u32; WORDS_PER_LINE];
        one[idx] = v;
        let mask = 1u16 << idx;

        // Local round: patch other L1 copies in this block in place.
        let targets = self.l2_dir[blk]
            .get(&line.0)
            .map(|e| e.others(local))
            .unwrap_or_default();
        let mut max_leg = 0;
        for t in &targets {
            let c2 = CoreId(blk * self.cpb + t);
            let hit = self.l1[c2.0].write_word(line, idx, v).is_some();
            debug_assert!(hit, "directory lists a sharer without the line");
            // Sharer copies stay clean: the home L2/L3 copy owns the
            // dirtiness (it plays the Sm role at the shared level).
            self.l1[c2.0].clean_words(line, mask);
            debug_assert!(matches!(
                self.l1_state[c2.0].get(&line.0),
                Some(Dragon::Sc | Dragon::Sm)
            ));
            self.l1_state[c2.0].insert(line.0, Dragon::Sc);
            self.traffic
                .add(TrafficCategory::Invalidation, self.update_flits());
            max_leg = max_leg.max(
                self.mesh
                    .rt_latency(hb_tile, self.core_tile_of_local(blk, *t)),
            );
        }
        if !targets.is_empty() {
            had_sharers = true;
            lat = lat.max(max_leg);
        }

        // Remote round: patch other blocks' copies via the L3 directory.
        let remote: Vec<usize> = if self.is_hier() {
            self.l3_dir
                .get(&line.0)
                .map(|e| e.others(blk))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        if !remote.is_empty() {
            had_sharers = true;
            let l3b = self.l3_bank(line);
            let up = self.rt_core_to_l3(hb_tile, l3b) + self.l3_rt();
            // Cross-block sharing writes through to the L3 home bank,
            // which becomes the data authority; every L2 copy stays a
            // clean mirror.
            let merged = self.l3[l3b].merge_words(line, &one, mask);
            debug_assert!(merged, "L3 holds every cross-block-shared line");
            self.traffic.add(TrafficCategory::L2L3, self.update_flits());
            let mut max_leg = 0;
            for b in remote {
                let bhb = self.home_bank(b, line);
                let bhb_tile = self.bank_tile(bhb);
                let leg = self.rt_core_to_l3(bhb_tile, l3b) + self.cfg.l2_rt;
                // Patch the remote L2 mirror...
                if self.l2[bhb].write_word(line, idx, v).is_some() {
                    self.l2[bhb].clean_words(line, mask);
                }
                // ...and that block's L1 copies.
                let locals = self.l2_dir[b]
                    .get(&line.0)
                    .map(|e| e.others(usize::MAX))
                    .unwrap_or_default();
                let mut fan = 0;
                for local2 in locals {
                    let c2 = CoreId(b * self.cpb + local2);
                    let hit = self.l1[c2.0].write_word(line, idx, v).is_some();
                    debug_assert!(hit, "directory lists a sharer without the line");
                    self.l1[c2.0].clean_words(line, mask);
                    self.l1_state[c2.0].insert(line.0, Dragon::Sc);
                    self.traffic
                        .add(TrafficCategory::Invalidation, self.update_flits());
                    fan = fan.max(
                        self.mesh
                            .rt_latency(bhb_tile, self.core_tile_of_local(b, local2)),
                    );
                }
                self.traffic
                    .add(TrafficCategory::Invalidation, self.update_flits());
                max_leg = max_leg.max(leg + fan);
            }
            lat = lat.max(up + max_leg);
            // Every copy below L1 is current; no block is ahead of L3.
            if let Some(e) = self.l3_dir.get_mut(&line.0) {
                e.owner = None;
            }
            // The writer's own home L2 mirror is patched clean too (L3
            // owns the dirtiness in cross-block mode).
            if self.l2[hb].write_word(line, idx, v).is_some() {
                self.l2[hb].clean_words(line, mask);
            }
        } else {
            // Block-local sharing: the home L2 bank absorbs the word as
            // dirty and this block becomes the one L3 must recall from.
            let merged = self.l2[hb].merge_words(line, &one, mask);
            debug_assert!(merged, "home L2 holds every shared line of its block");
            self.traffic
                .add(TrafficCategory::Writeback, self.update_flits());
            if self.is_hier() {
                if let Some(e) = self.l3_dir.get_mut(&line.0) {
                    e.owner = Some(blk);
                }
            }
        }
        (lat, had_sharers)
    }

    // ------------------------------------------------------------------
    // Public interface
    // ------------------------------------------------------------------

    /// Coherent load. Returns the value and the access latency.
    pub fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        let line = w.line();
        if self.l1_state_of(c, line).is_some() {
            // Updates keep every resident copy fresh: a hit is always
            // safe, whatever the state.
            let v = self.l1[c.0]
                .read_word(line, w.index_in_line())
                .expect("state/cache sync");
            return (v, self.cfg.l1_rt);
        }
        let blk = self.block_of(c);
        let hb = self.home_bank(blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
        lat += self.ensure_block_readable(blk, line);
        // Forward from a local owner if one exists (three-hop); the owner
        // stays resident as Sc.
        lat += self.pull_local_owner(blk, line, hb, Some(c));
        let data = *self.l2[hb].view(line).expect("block readable").data;
        // E if no one else holds it anywhere; else Sc.
        let local_sharers = self.l2_dir[blk]
            .get(&line.0)
            .map(|e| e.sharers)
            .unwrap_or(0);
        let exclusive_ok = if self.is_hier() {
            let e = self.l3_dir.get(&line.0).expect("block recorded at L3");
            e.sharers == 1 << blk
        } else {
            true
        };
        let st = if local_sharers == 0 && exclusive_ok {
            Dragon::E
        } else {
            Dragon::Sc
        };
        let local = self.local_idx(c);
        let entry = self.l2_dir[blk].entry(line.0).or_default();
        entry.add(local);
        if st == Dragon::E {
            entry.owner = Some(local);
            // Record block-level exclusivity so a later remote request
            // recalls this block (an E copy may silently become M).
            if self.is_hier() {
                self.l3_dir
                    .get_mut(&line.0)
                    .expect("block recorded at L3")
                    .owner = Some(blk);
            }
        }
        self.traffic
            .add(TrafficCategory::Linefill, self.cfg.line_flits());
        self.l1_fill(c, line, data, st);
        (data[w.index_in_line()], lat)
    }

    /// Coherent store. Returns the access latency.
    pub fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        let line = w.line();
        let idx = w.index_in_line();
        match self.l1_state_of(c, line) {
            Some(Dragon::M) => {
                self.l1[c.0].write_word(line, idx, v);
                self.cfg.l1_rt
            }
            Some(Dragon::E) => {
                // Silent E->M upgrade, exactly as in MESI.
                self.l1_state[c.0].insert(line.0, Dragon::M);
                self.l1[c.0].write_word(line, idx, v);
                self.cfg.l1_rt
            }
            Some(st) if st.is_shared() => self.shared_write(c, line, idx, v),
            _ => {
                // Write miss: fetch the line, then write under whatever
                // sharing situation the fetch found.
                let blk = self.block_of(c);
                let hb = self.home_bank(blk, line);
                let hb_tile = self.bank_tile(hb);
                let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
                lat += self.ensure_block_readable(blk, line);
                lat += self.pull_local_owner(blk, line, hb, Some(c));
                let data = *self.l2[hb].view(line).expect("block readable").data;
                let local = self.local_idx(c);
                let entry = self.l2_dir[blk].entry(line.0).or_default();
                entry.add(local);
                self.traffic
                    .add(TrafficCategory::Linefill, self.cfg.line_flits());
                self.l1_fill(c, line, data, Dragon::Sc);
                self.l1[c.0].write_word(line, idx, v);
                self.l1[c.0].clean_words(line, 1 << idx);
                let (bcast, had_sharers) = self.update_others(c, line, idx, v);
                lat += bcast;
                if had_sharers {
                    self.l1_state[c.0].insert(line.0, Dragon::Sm);
                } else {
                    // Nobody else holds it: the line is private after all.
                    self.l1_state[c.0].insert(line.0, Dragon::M);
                    self.l1[c.0].write_word(line, idx, v); // redo, dirty
                    self.l2_dir[blk].get_mut(&line.0).unwrap().owner = Some(local);
                    if self.is_hier() {
                        self.l3_dir.entry(line.0).or_default().owner = Some(blk);
                    }
                }
                lat
            }
        }
    }

    /// A store to a line this core shares: patch the local copy, then
    /// broadcast. If the broadcast finds no other sharer (everyone
    /// evicted), convert to `M` — the Dragon Sm->M transition.
    fn shared_write(&mut self, c: CoreId, line: LineAddr, idx: usize, v: Word) -> u64 {
        let blk = self.block_of(c);
        let hb = self.home_bank(blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
        self.l1[c.0].write_word(line, idx, v);
        self.l1[c.0].clean_words(line, 1 << idx);
        let (bcast, had_sharers) = self.update_others(c, line, idx, v);
        lat += bcast;
        if had_sharers {
            self.l1_state[c.0].insert(line.0, Dragon::Sm);
        } else {
            let local = self.local_idx(c);
            self.l1_state[c.0].insert(line.0, Dragon::M);
            self.l1[c.0].write_word(line, idx, v); // redo, dirty
            self.l2_dir[blk].get_mut(&line.0).unwrap().owner = Some(local);
            if self.is_hier() {
                self.l3_dir.entry(line.0).or_default().owner = Some(blk);
            }
        }
        lat
    }

    // ------------------------------------------------------------------
    // Simulator backdoors (no timing, no traffic)
    // ------------------------------------------------------------------

    /// Read the newest value of a word, wherever it lives. Under Dragon
    /// every copy of a shared line is identical, so any resident copy is
    /// as good as the authority.
    pub fn peek_word(&self, w: WordAddr) -> Word {
        let line = w.line();
        let idx = w.index_in_line();
        // An M/E L1 copy is newest.
        for (c, states) in self.l1_state.iter().enumerate() {
            if matches!(states.get(&line.0), Some(Dragon::M | Dragon::E)) {
                if let Some(v) = self.l1[c].view(line) {
                    return v.data[idx];
                }
            }
        }
        // A dirty word in some L2 bank is next.
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        for bank in &self.l3 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        // Any clean cached copy equals the authority below it.
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                return v.data[idx];
            }
        }
        self.mem.read_word(w)
    }

    /// Write a word directly to memory, dropping every cached copy. For
    /// test setup only.
    pub fn poke_word(&mut self, w: WordAddr, v: Word) {
        let line = w.line();
        for c in 0..self.l1.len() {
            self.l1[c].invalidate(line);
            self.l1_state[c].remove(&line.0);
        }
        for bank in &mut self.l2 {
            bank.invalidate(line);
        }
        for bank in &mut self.l3 {
            bank.invalidate(line);
        }
        for d in &mut self.l2_dir {
            d.remove(&line.0);
        }
        self.l3_dir.remove(&line.0);
        self.mem.write_word(w, v);
    }

    /// Protocol invariant check, used by property tests: directories
    /// match L1 residency; an owner implies sole local sharership; and —
    /// Dragon's defining property — every resident copy of a line holds
    /// identical words, with dirty words confined to E/M owners.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (blk, dir) in self.l2_dir.iter().enumerate() {
            for (laddr, e) in dir {
                if let Some(o) = e.owner {
                    if e.sharers != 1 << o {
                        return Err(format!(
                            "blk{blk} line {laddr}: owner {o} but sharers {:b}",
                            e.sharers
                        ));
                    }
                }
                for local in 0..self.cpb {
                    let c = blk * self.cpb + local;
                    let resident = self.l1_state[c].contains_key(laddr);
                    let listed = e.holds(local);
                    if resident != listed {
                        return Err(format!(
                            "blk{blk} line {laddr}: core {c} resident={resident} listed={listed}"
                        ));
                    }
                }
            }
        }
        for (c, states) in self.l1_state.iter().enumerate() {
            let blk = c / self.cpb;
            for (laddr, st) in states {
                let listed = self.l2_dir[blk]
                    .get(laddr)
                    .map(|e| e.holds(c % self.cpb))
                    .unwrap_or(false);
                if !listed {
                    return Err(format!("core {c} line {laddr} resident but unlisted"));
                }
                let view = self.l1[c]
                    .view(LineAddr(*laddr))
                    .ok_or_else(|| format!("core {c} line {laddr} stated but not cached"))?;
                if st.is_shared() && view.dirty != 0 {
                    return Err(format!("core {c} line {laddr} shared but dirty"));
                }
            }
        }
        // All resident copies of a line are byte-identical.
        let mut seen: FxHashMap<u64, [Word; WORDS_PER_LINE]> = FxHashMap::default();
        for (c, states) in self.l1_state.iter().enumerate() {
            for laddr in states.keys() {
                let data = *self.l1[c].view(LineAddr(*laddr)).expect("checked").data;
                if let Some(prev) = seen.get(laddr) {
                    if *prev != data {
                        return Err(format!("line {laddr} has diverged copies (core {c})"));
                    }
                } else {
                    seen.insert(*laddr, data);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::Addr;

    fn flat() -> DragonSystem {
        DragonSystem::new(MachineConfig::intra_block())
    }

    fn hier() -> DragonSystem {
        DragonSystem::new(MachineConfig::inter_block())
    }

    fn w(byte: u64) -> WordAddr {
        Addr(byte).word()
    }

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut m = flat();
        m.poke_word(w(0x1000), 77);
        let (v, lat) = m.read(CoreId(0), w(0x1000));
        assert_eq!(v, 77);
        assert!(lat > m.config().l1_rt);
        assert!(m.traffic.memory > 0);
        let (v2, lat2) = m.read(CoreId(0), w(0x1000));
        assert_eq!(v2, 77);
        assert_eq!(lat2, m.config().l1_rt);
        m.check_invariants().unwrap();
    }

    #[test]
    fn update_keeps_sharers_hitting() {
        let mut m = flat();
        m.poke_word(w(0x2000), 1);
        for c in [0, 1, 2] {
            assert_eq!(m.read(CoreId(c), w(0x2000)).0, 1);
        }
        let fills_before = m.traffic.linefill;
        m.write(CoreId(0), w(0x2000), 2);
        // The defining Dragon behavior: the other sharers still *hit*
        // and see the new value — no refetch, no linefill.
        for c in [1, 2] {
            let (v, lat) = m.read(CoreId(c), w(0x2000));
            assert_eq!(v, 2);
            assert_eq!(lat, m.config().l1_rt, "updated copy must still hit");
        }
        assert_eq!(m.traffic.linefill, fills_before, "updates avoid refills");
        m.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_read_then_silent_upgrade() {
        let mut m = flat();
        m.poke_word(w(0x4000), 9);
        m.read(CoreId(3), w(0x4000));
        let inv_before = m.traffic.invalidation;
        let lat = m.write(CoreId(3), w(0x4000), 10);
        assert_eq!(lat, m.config().l1_rt, "E->M is silent");
        assert_eq!(m.traffic.invalidation, inv_before);
        assert_eq!(m.peek_word(w(0x4000)), 10);
    }

    #[test]
    fn sm_converts_to_m_when_sharers_evaporate() {
        let mut m = flat();
        m.poke_word(w(0x5000), 1);
        m.read(CoreId(0), w(0x5000));
        m.read(CoreId(1), w(0x5000));
        m.write(CoreId(0), w(0x5000), 2);
        assert_eq!(m.l1_state_of(CoreId(0), w(0x5000).line()), Some(Dragon::Sm));
        // Core 1's copy leaves (direct invalidate models its eviction).
        let line = w(0x5000).line();
        m.l1[1].invalidate(line);
        m.l1_state[1].remove(&line.0);
        if let Some(e) = m.l2_dir[0].get_mut(&line.0) {
            e.remove(1);
        }
        // Next shared write discovers it is alone and converts to M.
        m.write(CoreId(0), w(0x5000), 3);
        assert_eq!(m.l1_state_of(CoreId(0), w(0x5000).line()), Some(Dragon::M));
        // ...after which writes are L1-local again.
        let lat = m.write(CoreId(0), w(0x5000), 4);
        assert_eq!(lat, m.config().l1_rt);
        assert_eq!(m.peek_word(w(0x5000)), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn false_sharing_ping_pong_updates_without_refills() {
        let mut m = flat();
        let a = w(0x6000);
        let b = WordAddr(a.0 + 1);
        m.write(CoreId(0), a, 1);
        m.write(CoreId(1), b, 2);
        let fills_once = m.traffic.linefill;
        for i in 0..10 {
            m.write(CoreId(0), a, i);
            m.write(CoreId(1), b, i);
        }
        // MESI would ping-pong ownership with a refill per write; Dragon
        // keeps both copies resident and only exchanges word updates.
        assert_eq!(m.traffic.linefill, fills_once);
        assert!(m.traffic.invalidation > 0, "updates are counted as control");
        assert_eq!(m.peek_word(a), 9);
        assert_eq!(m.peek_word(b), 9);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cross_block_communication_in_hierarchical_machine() {
        let mut m = hier();
        m.write(CoreId(0), w(0x7000), 55);
        let (v, lat) = m.read(CoreId(31), w(0x7000));
        assert_eq!(v, 55, "recall through L3 must deliver the dirty data");
        assert!(lat > 0);
        assert!(m.traffic.l2l3 > 0);
        // A subsequent cross-block write updates the remote copy in place.
        m.write(CoreId(31), w(0x7000), 56);
        let (v, lat) = m.read(CoreId(0), w(0x7000));
        assert_eq!(v, 56, "block 0's copy must have been patched");
        assert_eq!(lat, m.config().l1_rt, "no refetch under Dragon");
        m.check_invariants().unwrap();
    }

    #[test]
    fn capacity_evictions_write_back_dirty_data() {
        let mut m = flat();
        let step = 128 * 64; // one L1 set apart in bytes
        for i in 0..8u64 {
            m.write(CoreId(0), w(i * step), i as Word + 1);
        }
        for i in 0..8u64 {
            assert_eq!(m.peek_word(w(i * step)), i as Word + 1);
        }
        assert!(m.traffic.writeback > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn peek_finds_value_at_every_level() {
        let mut m = flat();
        m.poke_word(w(0x9000), 1);
        assert_eq!(m.peek_word(w(0x9000)), 1);
        m.write(CoreId(0), w(0x9000), 2);
        assert_eq!(m.peek_word(w(0x9000)), 2);
        m.read(CoreId(1), w(0x9000));
        assert_eq!(m.peek_word(w(0x9000)), 2);
        m.write(CoreId(1), w(0x9000), 3);
        assert_eq!(m.peek_word(w(0x9000)), 3);
    }
}
