//! The hardware-coherent protocol zoo: directory-based protocols the
//! incoherent machine is compared against.
//!
//! * [`MesiSystem`] — the HCC baseline, a full-map directory-based MESI
//!   protocol, flat for the single-block machine and hierarchical for the
//!   multi-block machine (paper §VI: "a hierarchical full-mapped
//!   directory-based MESI protocol").
//! * [`DragonSystem`] — an update-based Dragon protocol over the same
//!   directory organization: writes to shared lines broadcast word
//!   updates instead of invalidating, trading control bandwidth for the
//!   refetch misses MESI charges readers.
//!
//! Both protocols are value-accurate and timing-annotated: every
//! transition moves real data between the L1s, L2 banks, optional L3
//! banks, and memory, returns the access latency in cycles, and records
//! flits in the traffic ledger (linefill / writeback / invalidation /
//! memory / L2-L3).
//!
//! Directory placement follows the paper's organization: each line has a
//! home L2 bank inside its block (full map over the block's cores), and —
//! in the hierarchical machine — a home L3 bank (full map over blocks).

pub mod dragon;
pub mod mesi;

pub use dragon::{Dragon, DragonSystem};
pub use mesi::{Mesi, MesiSystem};
