//! Full-map directory MESI, flat (one block) or hierarchical (blocks + L3).
//!
//! Timing: every access returns its latency in cycles, composed of cache
//! round trips (Table III) plus mesh hops. Invalidation and recall rounds
//! complete when the farthest target acknowledges (messages fan out in
//! parallel, so latency is the max, while traffic counts every message).
//!
//! Value accuracy: lines carry real words; an M copy in an L1 is the only
//! up-to-date copy until it is pulled down by a forward, recall, or
//! writeback. `peek_word` (a simulator backdoor, no timing or traffic)
//! always finds the newest value, which the test suite uses to check
//! results.

use fxhash::FxHashMap;

use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::cache::EvictedLine;
use hic_mem::{Cache, LineAddr, Memory, Word, WordAddr};
use hic_noc::{Mesh, TrafficCategory, TrafficLedger};
use hic_sim::{CoreId, MachineConfig};

/// Per-L1-line MESI state. Absent from the map = Invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    S,
    E,
    M,
}

/// Directory entry: full map over the children of this level
/// (cores of a block at L2; blocks of the chip at L3).
#[derive(Debug, Clone, Default)]
struct DirEntry {
    /// Bitmask of children holding the line.
    sharers: u64,
    /// Child holding the line exclusively (E or M), if any.
    /// Invariant: `owner == Some(i)` implies `sharers == 1 << i`.
    owner: Option<usize>,
}

impl DirEntry {
    fn add(&mut self, i: usize) {
        self.sharers |= 1 << i;
    }
    fn remove(&mut self, i: usize) {
        self.sharers &= !(1 << i);
        if self.owner == Some(i) {
            self.owner = None;
        }
    }
    fn holds(&self, i: usize) -> bool {
        self.sharers & (1 << i) != 0
    }
    fn others(&self, i: usize) -> Vec<usize> {
        (0..64)
            .filter(|&j| j != i && self.sharers & (1 << j) != 0)
            .collect()
    }
    fn is_empty(&self) -> bool {
        self.sharers == 0
    }
}

/// The hardware-coherent memory system.
#[derive(Debug)]
pub struct MesiSystem {
    cfg: MachineConfig,
    mesh: Mesh,
    cpb: usize,
    bpb: usize,
    /// Per-core private L1.
    l1: Vec<Cache>,
    /// Per-core MESI state per resident line.
    l1_state: Vec<FxHashMap<u64, Mesi>>,
    /// L2 banks, global index `block * bpb + bank`.
    l2: Vec<Cache>,
    /// Per-block directory over that block's cores.
    l2_dir: Vec<FxHashMap<u64, DirEntry>>,
    /// L3 banks (hierarchical machine only).
    l3: Vec<Cache>,
    /// Directory over blocks (hierarchical machine only).
    l3_dir: FxHashMap<u64, DirEntry>,
    mem: Memory,
    /// Flit ledger.
    pub traffic: TrafficLedger,
}

impl MesiSystem {
    pub fn new(cfg: MachineConfig) -> MesiSystem {
        let ncores = cfg.num_cores();
        let nblocks = cfg.num_blocks();
        let cpb = cfg.cores_per_block();
        let bpb = cfg.l2_banks_per_block;
        assert!(cpb <= 64 && nblocks <= 64, "directory bitmask width");
        let l3_banks = cfg.inter.as_ref().map(|e| e.l3_banks).unwrap_or(0);
        MesiSystem {
            mesh: Mesh::new(ncores, cfg.hop_cycles),
            cpb,
            bpb,
            l1: (0..ncores).map(|_| Cache::new(cfg.l1)).collect(),
            l1_state: vec![FxHashMap::default(); ncores],
            l2: (0..nblocks * bpb).map(|_| Cache::new(cfg.l2)).collect(),
            l2_dir: vec![FxHashMap::default(); nblocks],
            l3: (0..l3_banks)
                .map(|_| Cache::new(cfg.inter.as_ref().unwrap().l3))
                .collect(),
            l3_dir: FxHashMap::default(),
            mem: Memory::new(),
            traffic: TrafficLedger::new(),
            cfg,
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    #[inline]
    fn block_of(&self, c: CoreId) -> usize {
        c.0 / self.cpb
    }

    #[inline]
    fn local_idx(&self, c: CoreId) -> usize {
        c.0 % self.cpb
    }

    /// Global L2 bank index of a line's home within `blk`.
    #[inline]
    fn home_bank(&self, blk: usize, line: LineAddr) -> usize {
        blk * self.bpb + (line.0 as usize % self.bpb)
    }

    /// Mesh tile of a global L2 bank (banks are colocated with core tiles).
    #[inline]
    fn bank_tile(&self, global_bank: usize) -> usize {
        let blk = global_bank / self.bpb;
        let bank = global_bank % self.bpb;
        blk * self.cpb + bank
    }

    #[inline]
    fn core_tile_of_local(&self, blk: usize, local: usize) -> usize {
        blk * self.cpb + local
    }

    fn is_hier(&self) -> bool {
        !self.l3.is_empty()
    }

    #[inline]
    fn l3_bank(&self, line: LineAddr) -> usize {
        line.0 as usize % self.l3.len()
    }

    /// RT from a core tile to a corner-resident L3 bank.
    fn rt_core_to_l3(&self, tile: usize, l3b: usize) -> u64 {
        self.mesh.rt_latency_to_corner(tile, l3b)
    }

    // ------------------------------------------------------------------
    // L1 side
    // ------------------------------------------------------------------

    fn l1_state_of(&self, c: CoreId, line: LineAddr) -> Option<Mesi> {
        self.l1_state[c.0].get(&line.0).copied()
    }

    /// Install a line in an L1 with the given state, handling the victim.
    /// Fills always arrive clean; an M installer dirties words as it
    /// writes them.
    fn l1_fill(&mut self, c: CoreId, line: LineAddr, data: [Word; WORDS_PER_LINE], st: Mesi) {
        if let Some(victim) = self.l1[c.0].fill(line, data, 0) {
            self.l1_evict(c, victim);
        }
        self.l1_state[c.0].insert(line.0, st);
    }

    /// Handle an L1 eviction: write dirty data back to the home L2 bank,
    /// or send a replacement hint, and update the directory.
    fn l1_evict(&mut self, c: CoreId, victim: EvictedLine) {
        let line = victim.addr;
        let st = self.l1_state[c.0].remove(&line.0);
        debug_assert!(st.is_some(), "evicted line had no state");
        let blk = self.block_of(c);
        if victim.dirty != 0 {
            let hb = self.home_bank(blk, line);
            let merged = self.l2[hb].merge_words(line, &victim.data, victim.dirty);
            debug_assert!(merged, "L2 must be inclusive of its L1s");
            let bytes = victim.dirty_words() as usize * 4;
            self.traffic
                .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
        } else {
            // Replacement hint keeps the full-map directory exact.
            self.traffic.add(TrafficCategory::Writeback, 1);
        }
        let local = self.local_idx(c);
        if let Some(e) = self.l2_dir[blk].get_mut(&line.0) {
            e.remove(local);
            if e.is_empty() {
                self.l2_dir[blk].remove(&line.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // Block-level acquisition
    // ------------------------------------------------------------------

    /// Ensure the block's L2 holds a readable copy of `line`; returns extra
    /// latency beyond the home-bank round trip.
    fn ensure_block_readable(&mut self, blk: usize, line: LineAddr) -> u64 {
        let hb = self.home_bank(blk, line);
        if self.l2[hb].probe(line).is_hit() {
            return 0;
        }
        let hb_tile = self.bank_tile(hb);
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            let mut lat = self.rt_core_to_l3(hb_tile, l3b) + self.cfg.inter.as_ref().unwrap().l3_rt;
            // Recall a remote exclusive block, if any.
            let owner_blk = self.l3_dir.get(&line.0).and_then(|e| e.owner);
            if let Some(b) = owner_blk {
                if b != blk {
                    lat += self.recall_block_to_l3(b, line, l3b);
                }
            }
            // L3 fill from memory if needed (memory sits at the corners).
            if !self.l3[l3b].probe(line).is_hit() {
                lat += self.cfg.mem_rt;
                let data = self.mem.read_line(line);
                self.traffic
                    .add(TrafficCategory::Memory, self.cfg.line_flits());
                if let Some(v) = self.l3[l3b].fill(line, data, 0) {
                    self.l3_evict(v);
                }
            }
            // Transfer L3 -> L2 and record the block as a sharer.
            let data = *self.l3[l3b].view(line).expect("just ensured").data;
            self.traffic
                .add(TrafficCategory::L2L3, self.cfg.line_flits());
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.l2_evict(blk, v);
            }
            self.l3_dir.entry(line.0).or_default().add(blk);
            lat
        } else {
            // Flat machine: fetch from memory at the nearest corner.
            let corner = self.mesh.nearest_corner(hb_tile);
            let lat = self.mesh.rt_latency_to_corner(hb_tile, corner) + self.cfg.mem_rt;
            let data = self.mem.read_line(line);
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.line_flits());
            if let Some(v) = self.l2[hb].fill(line, data, 0) {
                self.l2_evict(blk, v);
            }
            lat
        }
    }

    /// Pull a possibly-dirty line from an exclusive block down into L3 and
    /// downgrade the block to sharer. Returns the latency of the recall.
    fn recall_block_to_l3(&mut self, owner_blk: usize, line: LineAddr, l3b: usize) -> u64 {
        let hb = self.home_bank(owner_blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = self.rt_core_to_l3(hb_tile, l3b) + self.cfg.l2_rt;
        // First pull any L1 owner inside that block into its L2.
        lat += self.pull_local_owner(owner_blk, line, hb, false, None);
        // Then copy dirty words (if any) from L2 into L3.
        let (data, dirty) = match self.l2[hb].view(line) {
            Some(v) => (*v.data, v.dirty),
            None => {
                // The block's L2 lost the line via eviction (which already
                // wrote it back); nothing to transfer.
                self.l3_dir.entry(line.0).or_default().owner = None;
                return lat;
            }
        };
        if dirty != 0 {
            let bytes = dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
            let merged = self.l3[l3b].merge_words(line, &data, dirty);
            debug_assert!(merged, "L3 must be inclusive of L2s");
            self.l2[hb].clean_line(line);
        } else {
            self.traffic.add(TrafficCategory::Invalidation, 2);
        }
        if let Some(e) = self.l3_dir.get_mut(&line.0) {
            e.owner = None;
        }
        lat
    }

    /// If an L1 inside `blk` owns the line (E/M), pull its data into the
    /// block's L2 and downgrade it (to S, or drop it entirely when
    /// `drop_owner` — used by remote RFOs). Returns latency.
    ///
    /// When the requesting core is known, the data is forwarded directly
    /// owner -> requester (three-hop protocol): the returned latency is
    /// the *extra* beyond the home round trip the caller already charged.
    fn pull_local_owner(
        &mut self,
        blk: usize,
        line: LineAddr,
        hb: usize,
        drop_owner: bool,
        requester: Option<CoreId>,
    ) -> u64 {
        let owner = match self.l2_dir[blk].get(&line.0).and_then(|e| e.owner) {
            Some(o) => o,
            None => return 0,
        };
        let hb_tile = self.bank_tile(hb);
        let o_tile = self.core_tile_of_local(blk, owner);
        let lat = match requester {
            // Three-hop: home -> owner probe, owner lookup, owner ->
            // requester data; minus the home -> requester return leg the
            // caller's round-trip baseline already includes.
            Some(c) => (self.mesh.latency(hb_tile, o_tile)
                + self.cfg.l1_rt
                + self.mesh.latency(o_tile, c.0))
            .saturating_sub(self.mesh.latency(hb_tile, c.0)),
            // Four-hop recall through the home (cross-level rounds).
            None => self.mesh.rt_latency(hb_tile, o_tile) + self.cfg.l1_rt,
        };
        let c = CoreId(blk * self.cpb + owner);
        let view = self.l1[c.0].view(line).expect("owner must hold the line");
        let (data, dirty) = (*view.data, view.dirty);
        // The probe/ack pair is coherence-control traffic; dirty data
        // additionally rides back as a writeback.
        self.traffic.add(TrafficCategory::Invalidation, 2);
        if dirty != 0 {
            let bytes = dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
            let merged = self.l2[hb].merge_words(line, &data, dirty);
            debug_assert!(merged, "L2 must be inclusive of its L1s");
        }
        if drop_owner {
            self.l1[c.0].invalidate(line);
            self.l1_state[c.0].remove(&line.0);
            let e = self.l2_dir[blk].get_mut(&line.0).unwrap();
            e.remove(owner);
            if e.is_empty() {
                self.l2_dir[blk].remove(&line.0);
            }
        } else {
            self.l1[c.0].clean_line(line);
            self.l1_state[c.0].insert(line.0, Mesi::S);
            self.l2_dir[blk].get_mut(&line.0).unwrap().owner = None;
        }
        lat
    }

    // ------------------------------------------------------------------
    // Evictions at L2 / L3 (inclusivity recalls)
    // ------------------------------------------------------------------

    fn l2_evict(&mut self, blk: usize, mut victim: EvictedLine) {
        let line = victim.addr;
        // Recall every L1 copy in the block.
        if let Some(e) = self.l2_dir[blk].remove(&line.0) {
            for local in e.others(usize::MAX) {
                let c = CoreId(blk * self.cpb + local);
                if let Some(inv) = self.l1[c.0].invalidate(line) {
                    if inv.dirty != 0 {
                        for w in 0..WORDS_PER_LINE {
                            if inv.dirty & (1 << w) != 0 {
                                victim.data[w] = inv.data[w];
                            }
                        }
                        victim.dirty |= inv.dirty;
                        let bytes = inv.dirty_words() as usize * 4;
                        self.traffic
                            .add(TrafficCategory::Writeback, self.cfg.flits_for(bytes));
                    }
                }
                self.l1_state[c.0].remove(&line.0);
                self.traffic.add(TrafficCategory::Invalidation, 2);
            }
        }
        if self.is_hier() {
            let l3b = self.l3_bank(line);
            if victim.dirty != 0 {
                let bytes = victim.dirty.count_ones() as usize * 4;
                self.traffic
                    .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
                let merged = self.l3[l3b].merge_words(line, &victim.data, victim.dirty);
                debug_assert!(merged, "L3 inclusive of L2");
            }
            if let Some(e) = self.l3_dir.get_mut(&line.0) {
                e.remove(blk);
                if e.is_empty() {
                    self.l3_dir.remove(&line.0);
                }
            }
        } else if victim.dirty != 0 {
            let bytes = victim.dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.flits_for(bytes));
            self.mem.merge_words(line, &victim.data, victim.dirty);
        }
    }

    fn l3_evict(&mut self, mut victim: EvictedLine) {
        let line = victim.addr;
        if let Some(e) = self.l3_dir.remove(&line.0) {
            for blk in e.others(usize::MAX) {
                let hb = self.home_bank(blk, line);
                self.pull_local_owner(blk, line, hb, true, None);
                // Drop every remaining L1 sharer, then the L2 copy.
                if let Some(de) = self.l2_dir[blk].remove(&line.0) {
                    for local in de.others(usize::MAX) {
                        let c = CoreId(blk * self.cpb + local);
                        self.l1[c.0].invalidate(line);
                        self.l1_state[c.0].remove(&line.0);
                        self.traffic.add(TrafficCategory::Invalidation, 2);
                    }
                }
                if let Some(inv) = self.l2[hb].invalidate(line) {
                    if inv.dirty != 0 {
                        for w in 0..WORDS_PER_LINE {
                            if inv.dirty & (1 << w) != 0 {
                                victim.data[w] = inv.data[w];
                            }
                        }
                        victim.dirty |= inv.dirty;
                        let bytes = inv.dirty_words() as usize * 4;
                        self.traffic
                            .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
                    }
                }
                self.traffic.add(TrafficCategory::Invalidation, 2);
            }
        }
        if victim.dirty != 0 {
            let bytes = victim.dirty.count_ones() as usize * 4;
            self.traffic
                .add(TrafficCategory::Memory, self.cfg.flits_for(bytes));
            self.mem.merge_words(line, &victim.data, victim.dirty);
        }
    }

    // ------------------------------------------------------------------
    // Invalidation rounds
    // ------------------------------------------------------------------

    /// Invalidate every copy of `line` other than requester `c`'s, at both
    /// directory levels. Returns the latency of the round (max fan-out leg).
    fn invalidate_others(&mut self, c: CoreId, line: LineAddr) -> u64 {
        let blk = self.block_of(c);
        let local = self.local_idx(c);
        let hb = self.home_bank(blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = 0;

        // Local round: drop other L1 copies in this block.
        if let Some(e) = self.l2_dir[blk].get(&line.0) {
            let targets = e.others(local);
            let mut max_leg = 0;
            for t in &targets {
                let c2 = CoreId(blk * self.cpb + t);
                // Upgrades only happen when the requester holds S, so no
                // other copy can be dirty; RFOs pull the owner separately.
                self.l1[c2.0].invalidate(line);
                self.l1_state[c2.0].remove(&line.0);
                self.traffic.add(TrafficCategory::Invalidation, 2);
                max_leg = max_leg.max(
                    self.mesh
                        .rt_latency(hb_tile, self.core_tile_of_local(blk, *t)),
                );
            }
            if !targets.is_empty() {
                lat = lat.max(max_leg);
                let entry = self.l2_dir[blk].get_mut(&line.0).unwrap();
                entry.sharers = 1 << local;
                entry.owner = None;
            }
        }

        // Remote round: drop other blocks' copies via the L3 directory.
        if self.is_hier() {
            let remote: Vec<usize> = self
                .l3_dir
                .get(&line.0)
                .map(|e| e.others(blk))
                .unwrap_or_default();
            if !remote.is_empty() {
                let l3b = self.l3_bank(line);
                let up = self.rt_core_to_l3(hb_tile, l3b) + self.cfg.inter.as_ref().unwrap().l3_rt;
                let mut max_leg = 0;
                for b in remote {
                    let bhb = self.home_bank(b, line);
                    let bhb_tile = self.bank_tile(bhb);
                    let mut leg = self.rt_core_to_l3(bhb_tile, l3b) + self.cfg.l2_rt;
                    // Pull any dirty owner inside that block first, then
                    // drop all its copies.
                    leg += self.pull_local_owner(b, line, bhb, true, None);
                    if let Some(de) = self.l2_dir[b].remove(&line.0) {
                        for local2 in de.others(usize::MAX) {
                            let c2 = CoreId(b * self.cpb + local2);
                            self.l1[c2.0].invalidate(line);
                            self.l1_state[c2.0].remove(&line.0);
                            self.traffic.add(TrafficCategory::Invalidation, 2);
                        }
                    }
                    if let Some(inv) = self.l2[bhb].invalidate(line) {
                        if inv.dirty != 0 {
                            let l3bank = self.l3_bank(line);
                            let bytes = inv.dirty.count_ones() as usize * 4;
                            self.traffic
                                .add(TrafficCategory::L2L3, self.cfg.flits_for(bytes));
                            self.l3[l3bank].merge_words(line, &inv.data, inv.dirty);
                        }
                    }
                    self.traffic.add(TrafficCategory::Invalidation, 2);
                    max_leg = max_leg.max(leg);
                }
                lat = lat.max(up + max_leg);
                let e = self.l3_dir.get_mut(&line.0).unwrap();
                e.sharers = 1 << blk;
                e.owner = Some(blk);
            } else {
                // Even with no remote sharers, taking block ownership is a
                // directory update; piggybacked on the L2 round (no extra
                // latency), but the L3 entry must record it.
                self.l3_dir.entry(line.0).or_default().owner = Some(blk);
                let e = self.l3_dir.get_mut(&line.0).unwrap();
                e.add(blk);
            }
        }
        lat
    }

    // ------------------------------------------------------------------
    // Public interface
    // ------------------------------------------------------------------

    /// Coherent load. Returns the value and the access latency.
    pub fn read(&mut self, c: CoreId, w: WordAddr) -> (Word, u64) {
        let line = w.line();
        if self.l1_state_of(c, line).is_some() {
            let v = self.l1[c.0]
                .read_word(line, w.index_in_line())
                .expect("state/cache sync");
            return (v, self.cfg.l1_rt);
        }
        let blk = self.block_of(c);
        let hb = self.home_bank(blk, line);
        let hb_tile = self.bank_tile(hb);
        let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
        lat += self.ensure_block_readable(blk, line);
        // Forward from a local owner if one exists (three-hop).
        lat += self.pull_local_owner(blk, line, hb, false, Some(c));
        let data = *self.l2[hb].view(line).expect("block readable").data;
        // E if no one else holds it anywhere; else S.
        let local_sharers = self.l2_dir[blk]
            .get(&line.0)
            .map(|e| e.sharers)
            .unwrap_or(0);
        let exclusive_ok = if self.is_hier() {
            let e = self.l3_dir.get(&line.0).expect("block recorded at L3");
            e.sharers == 1 << blk
        } else {
            true
        };
        let st = if local_sharers == 0 && exclusive_ok {
            Mesi::E
        } else {
            Mesi::S
        };
        let local = self.local_idx(c);
        let entry = self.l2_dir[blk].entry(line.0).or_default();
        entry.add(local);
        if st == Mesi::E {
            entry.owner = Some(local);
            // Record block-level exclusivity so a later remote request
            // recalls this block (an E copy may silently become M).
            if self.is_hier() {
                self.l3_dir
                    .get_mut(&line.0)
                    .expect("block recorded at L3")
                    .owner = Some(blk);
            }
        }
        self.traffic
            .add(TrafficCategory::Linefill, self.cfg.line_flits());
        self.l1_fill(c, line, data, st);
        (data[w.index_in_line()], lat)
    }

    /// Coherent store. Returns the access latency.
    pub fn write(&mut self, c: CoreId, w: WordAddr, v: Word) -> u64 {
        let line = w.line();
        match self.l1_state_of(c, line) {
            Some(Mesi::M) => {
                self.l1[c.0].write_word(line, w.index_in_line(), v);
                self.cfg.l1_rt
            }
            Some(Mesi::E) => {
                // Silent E->M upgrade.
                self.l1_state[c.0].insert(line.0, Mesi::M);
                self.l1[c.0].write_word(line, w.index_in_line(), v);
                self.cfg.l1_rt
            }
            Some(Mesi::S) => {
                // Upgrade: invalidate all other copies.
                let blk = self.block_of(c);
                let hb = self.home_bank(blk, line);
                let hb_tile = self.bank_tile(hb);
                let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
                lat += self.invalidate_others(c, line);
                let local = self.local_idx(c);
                self.l2_dir[blk].get_mut(&line.0).unwrap().owner = Some(local);
                self.l1_state[c.0].insert(line.0, Mesi::M);
                self.l1[c.0].write_word(line, w.index_in_line(), v);
                lat
            }
            None => {
                // Read-for-ownership.
                let blk = self.block_of(c);
                let hb = self.home_bank(blk, line);
                let hb_tile = self.bank_tile(hb);
                let mut lat = self.cfg.l1_rt + self.mesh.rt_latency(c.0, hb_tile) + self.cfg.l2_rt;
                lat += self.ensure_block_readable(blk, line);
                // Pull and drop any local owner; drop all other sharers.
                lat += self.pull_local_owner(blk, line, hb, true, Some(c));
                lat += self.invalidate_others(c, line);
                let data = *self.l2[hb].view(line).expect("block readable").data;
                let local = self.local_idx(c);
                let entry = self.l2_dir[blk].entry(line.0).or_default();
                entry.sharers = 1 << local;
                entry.owner = Some(local);
                if self.is_hier() {
                    let e = self.l3_dir.entry(line.0).or_default();
                    e.add(blk);
                    e.owner = Some(blk);
                }
                self.traffic
                    .add(TrafficCategory::Linefill, self.cfg.line_flits());
                self.l1_fill(c, line, data, Mesi::M);
                self.l1[c.0].write_word(line, w.index_in_line(), v);
                lat
            }
        }
    }

    // ------------------------------------------------------------------
    // Simulator backdoors (no timing, no traffic)
    // ------------------------------------------------------------------

    /// Read the newest value of a word, wherever it lives.
    pub fn peek_word(&self, w: WordAddr) -> Word {
        let line = w.line();
        let idx = w.index_in_line();
        // An M/E L1 copy is newest.
        for (c, states) in self.l1_state.iter().enumerate() {
            if matches!(states.get(&line.0), Some(Mesi::M | Mesi::E)) {
                if let Some(v) = self.l1[c].view(line) {
                    return v.data[idx];
                }
            }
        }
        // A dirty word in some L2 bank is next.
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        for bank in &self.l3 {
            if let Some(v) = bank.view(line) {
                if v.dirty & (1 << idx) != 0 {
                    return v.data[idx];
                }
            }
        }
        // Any clean cached copy equals memory... except memory may be
        // stale if a clean S copy exists above a dirty L2/L3 copy, which
        // the scans above already caught.
        for bank in &self.l2 {
            if let Some(v) = bank.view(line) {
                return v.data[idx];
            }
        }
        self.mem.read_word(w)
    }

    /// Write a word directly to memory, dropping every cached copy. For
    /// test setup only.
    pub fn poke_word(&mut self, w: WordAddr, v: Word) {
        let line = w.line();
        for c in 0..self.l1.len() {
            self.l1[c].invalidate(line);
            self.l1_state[c].remove(&line.0);
        }
        for bank in &mut self.l2 {
            bank.invalidate(line);
        }
        for bank in &mut self.l3 {
            bank.invalidate(line);
        }
        for d in &mut self.l2_dir {
            d.remove(&line.0);
        }
        self.l3_dir.remove(&line.0);
        self.mem.write_word(w, v);
    }

    /// Directory invariant check, used by property tests: an owner implies
    /// exactly one sharer, and every sharer bit corresponds to a resident
    /// L1 line with a matching state.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (blk, dir) in self.l2_dir.iter().enumerate() {
            for (laddr, e) in dir {
                if let Some(o) = e.owner {
                    if e.sharers != 1 << o {
                        return Err(format!(
                            "blk{blk} line {laddr}: owner {o} but sharers {:b}",
                            e.sharers
                        ));
                    }
                }
                for local in 0..self.cpb {
                    let c = blk * self.cpb + local;
                    let resident = self.l1_state[c].contains_key(laddr);
                    let listed = e.holds(local);
                    if resident != listed {
                        return Err(format!(
                            "blk{blk} line {laddr}: core {c} resident={resident} listed={listed}"
                        ));
                    }
                }
            }
        }
        // And the reverse: resident L1 lines are listed.
        for (c, states) in self.l1_state.iter().enumerate() {
            let blk = c / self.cpb;
            for laddr in states.keys() {
                let listed = self.l2_dir[blk]
                    .get(laddr)
                    .map(|e| e.holds(c % self.cpb))
                    .unwrap_or(false);
                if !listed {
                    return Err(format!("core {c} line {laddr} resident but unlisted"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_mem::Addr;

    fn flat() -> MesiSystem {
        MesiSystem::new(MachineConfig::intra_block())
    }

    fn hier() -> MesiSystem {
        MesiSystem::new(MachineConfig::inter_block())
    }

    fn w(byte: u64) -> WordAddr {
        Addr(byte).word()
    }

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut m = flat();
        m.poke_word(w(0x1000), 77);
        let (v, lat) = m.read(CoreId(0), w(0x1000));
        assert_eq!(v, 77);
        assert!(
            lat > m.config().l1_rt,
            "cold miss must cost more than a hit"
        );
        assert!(m.traffic.memory > 0);
        assert!(m.traffic.linefill > 0);
        // Second read hits.
        let (v2, lat2) = m.read(CoreId(0), w(0x1000));
        assert_eq!(v2, 77);
        assert_eq!(lat2, m.config().l1_rt);
        m.check_invariants().unwrap();
    }

    #[test]
    fn store_then_remote_load_forwards_fresh_value() {
        let mut m = flat();
        m.write(CoreId(0), w(0x2000), 123);
        let (v, _) = m.read(CoreId(5), w(0x2000));
        assert_eq!(v, 123, "MESI must forward the dirty copy");
        m.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut m = flat();
        m.poke_word(w(0x3000), 1);
        // Three readers share the line.
        for c in [0, 1, 2] {
            let (v, _) = m.read(CoreId(c), w(0x3000));
            assert_eq!(v, 1);
        }
        let inv_before = m.traffic.invalidation;
        m.write(CoreId(0), w(0x3000), 2);
        assert!(
            m.traffic.invalidation > inv_before,
            "upgrade sends invalidations"
        );
        // The other cores re-read and see the new value.
        for c in [1, 2] {
            let (v, _) = m.read(CoreId(c), w(0x3000));
            assert_eq!(v, 2);
        }
        m.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_read_then_silent_upgrade() {
        let mut m = flat();
        m.poke_word(w(0x4000), 9);
        m.read(CoreId(3), w(0x4000));
        let inv_before = m.traffic.invalidation;
        // Sole reader got E; the write upgrades silently.
        let lat = m.write(CoreId(3), w(0x4000), 10);
        assert_eq!(lat, m.config().l1_rt);
        assert_eq!(m.traffic.invalidation, inv_before);
        assert_eq!(m.peek_word(w(0x4000)), 10);
    }

    #[test]
    fn false_sharing_ping_pong_counts_invalidations() {
        let mut m = flat();
        // Two cores write different words of the same line repeatedly.
        let a = w(0x5000);
        let b = WordAddr(a.0 + 1);
        m.write(CoreId(0), a, 1);
        m.write(CoreId(1), b, 2);
        let inv_once = m.traffic.invalidation;
        assert!(inv_once > 0, "second writer must invalidate the first");
        for i in 0..10 {
            m.write(CoreId(0), a, i);
            m.write(CoreId(1), b, i);
        }
        assert!(
            m.traffic.invalidation > inv_once,
            "ping-pong keeps invalidating"
        );
        assert_eq!(m.peek_word(a), 9);
        assert_eq!(m.peek_word(b), 9);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cross_block_communication_in_hierarchical_machine() {
        let mut m = hier();
        // Core 0 (block 0) writes; core 31 (block 3) reads.
        m.write(CoreId(0), w(0x6000), 55);
        let (v, lat) = m.read(CoreId(31), w(0x6000));
        assert_eq!(v, 55, "recall through L3 must deliver the dirty data");
        assert!(lat > 0);
        assert!(m.traffic.l2l3 > 0, "cross-block transfer moves data via L3");
        m.check_invariants().unwrap();
    }

    #[test]
    fn cross_block_write_invalidates_remote_block() {
        let mut m = hier();
        m.poke_word(w(0x7000), 5);
        m.read(CoreId(0), w(0x7000)); // block 0 caches it
        m.read(CoreId(8), w(0x7000)); // block 1 caches it
        m.write(CoreId(0), w(0x7000), 6);
        let (v, _) = m.read(CoreId(8), w(0x7000));
        assert_eq!(v, 6, "block 1 must have been invalidated and refetch");
        m.check_invariants().unwrap();
    }

    #[test]
    fn intra_block_read_in_hier_machine_does_not_touch_l3_dir_owner() {
        let mut m = hier();
        m.write(CoreId(1), w(0x8000), 3);
        let (v, _) = m.read(CoreId(2), w(0x8000)); // same block
        assert_eq!(v, 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn peek_finds_value_at_every_level() {
        let mut m = flat();
        // In memory only.
        m.poke_word(w(0x9000), 1);
        assert_eq!(m.peek_word(w(0x9000)), 1);
        // Dirty in an L1.
        m.write(CoreId(0), w(0x9000), 2);
        assert_eq!(m.peek_word(w(0x9000)), 2);
        // After a remote read pulls it into L2 (dirty there, owner gone).
        m.read(CoreId(1), w(0x9000));
        assert_eq!(m.peek_word(w(0x9000)), 2);
    }

    #[test]
    fn capacity_evictions_write_back_dirty_data() {
        let mut m = flat();
        // Write more lines mapping to one L1 set than its associativity.
        // L1: 128 sets, so lines 0, 128, 256, ... collide. 4 ways.
        let step = 128 * 64; // one set apart in bytes
        for i in 0..8u64 {
            m.write(CoreId(0), w(i * step), i as Word + 1);
        }
        // All values must survive (in L2 or memory).
        for i in 0..8u64 {
            assert_eq!(m.peek_word(w(i * step)), i as Word + 1);
        }
        assert!(m.traffic.writeback > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn latency_scales_with_distance_to_home_bank() {
        let mut m = flat();
        // Line 0's home bank is bank 0 at tile 0. Core 0 is local; core 15
        // is 6 hops away.
        m.poke_word(w(0), 1);
        let (_, lat_local) = m.read(CoreId(0), w(0));
        let mut m2 = flat();
        m2.poke_word(w(0), 1);
        let (_, lat_remote) = m2.read(CoreId(15), w(0));
        assert!(
            lat_remote > lat_local,
            "remote bank access ({lat_remote}) must exceed local ({lat_local})"
        );
    }
}
