//! Property test: the directory-MESI system is sequentially consistent
//! with respect to the (global) order in which the simulator performs
//! operations — every read returns exactly what the last write to that
//! word (in execution order) stored — and the directory invariants hold
//! after every step.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_coherence::MesiSystem;
use hic_mem::WordAddr;
use hic_sim::{CoreId, MachineConfig, SplitMix64};

#[derive(Debug, Clone)]
enum MesiOp {
    Read { core: usize, word: u64 },
    Write { core: usize, word: u64, value: u32 },
}

fn gen_op(rng: &mut SplitMix64, cores: usize, words: u64) -> MesiOp {
    let core = rng.below(cores as u64) as usize;
    let word = rng.below(words);
    if rng.below(2) == 0 {
        MesiOp::Read { core, word }
    } else {
        MesiOp::Write {
            core,
            word,
            value: rng.next_u32(),
        }
    }
}

fn run_sequence(case: u64, cfg: MachineConfig, ops: Vec<MesiOp>) {
    let cores = cfg.num_cores();
    let mut m = MesiSystem::new(cfg);
    // Reference model: last written value per word.
    let mut model = std::collections::HashMap::<u64, u32>::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            MesiOp::Read { core, word } => {
                assert!(core < cores);
                let (v, lat) = m.read(CoreId(core), WordAddr(word));
                let want = model.get(&word).copied().unwrap_or(0);
                assert_eq!(
                    v, want,
                    "case {case} step {step}: core {core} read word {word} -> {v} want {want}"
                );
                assert!(lat >= 2, "no access is faster than an L1 hit");
            }
            MesiOp::Write { core, word, value } => {
                m.write(CoreId(core), WordAddr(word), value);
                model.insert(word, value);
            }
        }
        if let Err(e) = m.check_invariants() {
            panic!("case {case} step {step}: {e}");
        }
        // peek agrees with the model at every step, for every word.
        for (&w, &want) in &model {
            assert_eq!(
                m.peek_word(WordAddr(w)),
                want,
                "case {case}: peek of word {w} at step {step}"
            );
        }
    }
}

/// Flat (single-block) machine. Word space spans a few cache sets and
/// forces line sharing (16 words per line over 8 lines).
#[test]
fn flat_mesi_is_sequentially_consistent() {
    let mut rng = SplitMix64::new(0x3E51);
    for case in 0..48 {
        let len = 1 + rng.below(119);
        let ops = (0..len).map(|_| gen_op(&mut rng, 16, 128)).collect();
        run_sequence(case, MachineConfig::intra_block(), ops);
    }
}

/// Hierarchical (4x8) machine: cross-block recalls, L3 directory.
#[test]
fn hierarchical_mesi_is_sequentially_consistent() {
    let mut rng = SplitMix64::new(0x3E52);
    for case in 0..48 {
        let len = 1 + rng.below(99);
        let ops = (0..len).map(|_| gen_op(&mut rng, 32, 128)).collect();
        run_sequence(case, MachineConfig::inter_block(), ops);
    }
}

/// Capacity stress: words spread over many lines mapping to few sets,
/// forcing L1 evictions, writebacks, and directory cleanup.
#[test]
fn mesi_survives_capacity_evictions() {
    let mut rng = SplitMix64::new(0x3E53);
    for case in 0..48 {
        let len = 1 + rng.below(79);
        let ops = (0..len)
            .map(|_| {
                // 8 distinct lines all in L1 set 0 (stride = sets * 16 words).
                MesiOp::Write {
                    core: rng.below(4) as usize,
                    word: rng.below(8) * 128 * 16,
                    value: rng.next_u32(),
                }
            })
            .collect();
        run_sequence(case, MachineConfig::intra_block(), ops);
    }
}
