//! Property test: the directory-MESI system is sequentially consistent
//! with respect to the (global) order in which the simulator performs
//! operations — every read returns exactly what the last write to that
//! word (in execution order) stored — and the directory invariants hold
//! after every step.

use proptest::prelude::*;

use hic_coherence::MesiSystem;
use hic_mem::WordAddr;
use hic_sim::{CoreId, MachineConfig};

#[derive(Debug, Clone)]
enum MesiOp {
    Read { core: usize, word: u64 },
    Write { core: usize, word: u64, value: u32 },
}

fn arb_op(cores: usize, words: u64) -> impl Strategy<Value = MesiOp> {
    prop_oneof![
        (0..cores, 0..words).prop_map(|(core, word)| MesiOp::Read { core, word }),
        (0..cores, 0..words, any::<u32>())
            .prop_map(|(core, word, value)| MesiOp::Write { core, word, value }),
    ]
}

fn run_sequence(cfg: MachineConfig, ops: Vec<MesiOp>) -> Result<(), TestCaseError> {
    let cores = cfg.num_cores();
    let mut m = MesiSystem::new(cfg);
    // Reference model: last written value per word.
    let mut model = std::collections::HashMap::<u64, u32>::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            MesiOp::Read { core, word } => {
                prop_assert!(core < cores);
                let (v, lat) = m.read(CoreId(core), WordAddr(word));
                let want = model.get(&word).copied().unwrap_or(0);
                prop_assert_eq!(
                    v, want,
                    "step {}: core {} read word {} -> {} want {}",
                    step, core, word, v, want
                );
                prop_assert!(lat >= 2, "no access is faster than an L1 hit");
            }
            MesiOp::Write { core, word, value } => {
                m.write(CoreId(core), WordAddr(word), value);
                model.insert(word, value);
            }
        }
        if let Err(e) = m.check_invariants() {
            return Err(TestCaseError::fail(format!("step {step}: {e}")));
        }
        // peek agrees with the model at every step, for every word.
        for (&w, &want) in &model {
            prop_assert_eq!(m.peek_word(WordAddr(w)), want, "peek of word {} at step {}", w, step);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Flat (single-block) machine. Word space spans a few cache sets and
    /// forces line sharing (16 words per line over 8 lines).
    #[test]
    fn flat_mesi_is_sequentially_consistent(
        ops in proptest::collection::vec(arb_op(16, 128), 1..120)
    ) {
        run_sequence(MachineConfig::intra_block(), ops)?;
    }

    /// Hierarchical (4x8) machine: cross-block recalls, L3 directory.
    #[test]
    fn hierarchical_mesi_is_sequentially_consistent(
        ops in proptest::collection::vec(arb_op(32, 128), 1..100)
    ) {
        run_sequence(MachineConfig::inter_block(), ops)?;
    }

    /// Capacity stress: words spread over many lines mapping to few sets,
    /// forcing L1 evictions, writebacks, and directory cleanup.
    #[test]
    fn mesi_survives_capacity_evictions(
        ops in proptest::collection::vec(
            // 8 distinct lines all in L1 set 0 (stride = sets * 16 words).
            (0..4usize, 0..8u64, any::<u32>()).prop_map(|(core, line, value)| {
                MesiOp::Write { core, word: line * 128 * 16, value }
            }),
            1..80
        )
    ) {
        run_sequence(MachineConfig::intra_block(), ops)?;
    }
}
