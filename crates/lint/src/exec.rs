//! The abstract interpreter behind `hic-lint`.
//!
//! A [`ProgramRecord`] is lowered to per-thread streams of abstract
//! operations — region reads/writes, WB/INV instructions with the exact
//! scope the [`ThreadCtx`](hic_runtime::ThreadCtx) lowering would give
//! them under the record's configuration, and sync ops — and interpreted
//! over an abstract memory model that mirrors the incoherent machine's
//! *visibility* semantics without its timing:
//!
//! * copies are line-granular (fills and INV drops move whole lines, as
//!   `fetch_into_l1` / `exec_inv` do), values word-granular;
//! * a WB pushes a thread's dirty words below its L1: into the block's
//!   L2 when it holds the line, else straight to the global level
//!   (`push_below_l1`); global scopes additionally drain the block L2's
//!   dirty copies downward (`exec_wb`);
//! * an INV force-writes-back dirty lines before dropping them, and
//!   global scopes also drop the block L2's copies (`exec_inv`);
//! * evictions are **not** modeled — every fill stays resident. Static
//!   staleness is therefore a superset of what any timed run can observe
//!   (an eviction can only push data *further down*, never resurrect a
//!   stale copy), so a clean lint is sound and a finding is a real plan
//!   deficiency, not a timing artifact.
//!
//! Ordering uses the same FastTrack vector clocks as the dynamic
//! sanitizer (`hic-check`): a read is checked only when a sync path
//! orders the write before it, and a stale checked read is attributed to
//! the producer side (value never reached the reader/writer's common
//! level → missing WB) or the consumer side (it did → missing INV),
//! with the sync op that should have carried the fix.
//!
//! Threads are scheduled run-to-block round-robin: barriers park until
//! their participant count arrives, flag waits park until the flag is
//! set. Model-2 programs order cross-thread communication by exactly
//! these ops, so any sync-ordered producer event executes before the
//! consumer's epoch starts and the interleaving of *unordered* events
//! cannot affect checked reads. A schedule that cannot complete (barrier
//! short of participants, flag never set) is a structure error.

use fxhash::{FxHashMap, FxHashSet};
use hic_check::{FindingKind, SyncOp, SyncRef};
use hic_core::VectorClock;
use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::Region;
use hic_runtime::{CommOp, InterConfig, ProgramRecord, RecEvent, RecSync, Scheme};
use hic_sim::ThreadId;

use crate::report::{LintCoverage, LintFinding, LintReport};

/// Cap on distinct raw (kind, word, actor) findings before aggregation.
const MAX_RAW_FINDINGS: usize = 65536;

const MAX_BLOCKS: usize = 8;

/// Copy-version sentinel for a capture whose content is
/// schedule-dependent (the word's last write is not sync-ordered before
/// the filling thread). A poisoned copy compares unequal to every real
/// version, so it is pessimistically stale — the static verdict must not
/// depend on how a race happened to interleave in our abstract schedule.
const POISON_V: u64 = u64::MAX;

/// Identity of one prunable planned operation (an op inside a plan passed
/// to a `plan_wb` / `plan_inv` call site, under a configuration that
/// issues per-op instructions).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpInfo {
    pub thread: usize,
    pub is_wb: bool,
    /// The thread's `plan_wb` (resp. `plan_inv`) call-site index.
    pub site: usize,
    /// Position within that plan's `wb` (resp. `inv`) vector.
    pub index: usize,
    pub op: CommOp,
}

#[derive(Debug, Clone, Copy)]
enum ATarget {
    All,
    Range(Region),
}

impl ATarget {
    fn covers_word(self, w: u64) -> bool {
        match self {
            ATarget::All => true,
            ATarget::Range(r) => r.contains(hic_mem::WordAddr(w)),
        }
    }

    /// Line range `[lo, hi)` the target's INV drops (INV is line-granular:
    /// every line the range touches is dropped whole).
    fn line_range(self) -> Option<(u64, u64)> {
        match self {
            ATarget::All => None,
            ATarget::Range(r) => {
                if r.words == 0 {
                    Some((0, 0))
                } else {
                    let wpl = WORDS_PER_LINE as u64;
                    Some((r.start.0 / wpl, (r.end().0 - 1) / wpl + 1))
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum AOp {
    Read(Region),
    Write(Region),
    Wb {
        target: ATarget,
        global: bool,
        id: Option<u32>,
    },
    Inv {
        target: ATarget,
        global: bool,
        id: Option<u32>,
    },
    Barrier(usize),
    FlagSet(usize),
    FlagWait(usize),
    FlagClear(usize),
}

pub(crate) struct Lowered {
    streams: Vec<Vec<AOp>>,
    pub ops: Vec<OpInfo>,
}

/// Lower the record's events into abstract op streams, mirroring the
/// `ThreadCtx` lowering for the record's configuration exactly
/// (`plan_wb_ops` / `plan_inv_ops` / `barrier_with` / `flag_*_opts`).
pub(crate) fn lower(rec: &ProgramRecord) -> Lowered {
    let cfg = rec.config;
    let coherent = cfg.is_coherent();
    let inter = matches!(cfg.scheme(), Scheme::Inter(_));
    let cpb = cfg.machine_config().cores_per_block();
    let mut ops: Vec<OpInfo> = Vec::new();
    let mut streams = Vec::with_capacity(rec.nthreads);
    for t in 0..rec.nthreads {
        let mut s: Vec<AOp> = Vec::new();
        let (mut wb_site, mut inv_site) = (0usize, 0usize);
        let plan_op =
            |ops: &mut Vec<OpInfo>, is_wb: bool, site: usize, index: usize, op: CommOp| {
                let id = ops.len() as u32;
                ops.push(OpInfo {
                    thread: t,
                    is_wb,
                    site,
                    index,
                    op,
                });
                Some(id)
            };
        for ev in &rec.threads[t] {
            match ev {
                RecEvent::Reads(r) => s.push(AOp::Read(*r)),
                RecEvent::Writes(r) => s.push(AOp::Write(*r)),
                RecEvent::PlanWb(plan) => {
                    let site = wb_site;
                    wb_site += 1;
                    if coherent {
                        continue;
                    }
                    match cfg.scheme() {
                        Scheme::Inter(InterConfig::Base) => s.push(AOp::Wb {
                            target: ATarget::All,
                            global: true,
                            id: None,
                        }),
                        Scheme::Inter(InterConfig::Addr) => {
                            for (i, op) in plan.wb.iter().enumerate() {
                                s.push(AOp::Wb {
                                    target: ATarget::Range(op.region),
                                    global: true,
                                    id: plan_op(&mut ops, true, site, i, *op),
                                });
                            }
                        }
                        Scheme::Inter(InterConfig::AddrL) => {
                            for (i, op) in plan.wb.iter().enumerate() {
                                // WB_CONS: global iff the consumer is not
                                // in the issuer's block (`wb_is_global`).
                                let global = op.peer.is_none_or(|p| p.0 / cpb != t / cpb);
                                s.push(AOp::Wb {
                                    target: ATarget::Range(op.region),
                                    global,
                                    id: plan_op(&mut ops, true, site, i, *op),
                                });
                            }
                        }
                        Scheme::Intra(_) => {
                            for (i, op) in plan.wb.iter().enumerate() {
                                s.push(AOp::Wb {
                                    target: ATarget::Range(op.region),
                                    global: false,
                                    id: plan_op(&mut ops, true, site, i, *op),
                                });
                            }
                        }
                        Scheme::Inter(InterConfig::Hcc | InterConfig::Dragon) => unreachable!(),
                    }
                }
                RecEvent::PlanInv(plan) => {
                    let site = inv_site;
                    inv_site += 1;
                    if coherent {
                        continue;
                    }
                    match cfg.scheme() {
                        Scheme::Inter(InterConfig::Base) => s.push(AOp::Inv {
                            target: ATarget::All,
                            global: true,
                            id: None,
                        }),
                        Scheme::Inter(InterConfig::Addr) => {
                            for (i, op) in plan.inv.iter().enumerate() {
                                s.push(AOp::Inv {
                                    target: ATarget::Range(op.region),
                                    global: true,
                                    id: plan_op(&mut ops, false, site, i, *op),
                                });
                            }
                        }
                        Scheme::Inter(InterConfig::AddrL) => {
                            for (i, op) in plan.inv.iter().enumerate() {
                                // INV_PROD: global iff the producer is not
                                // in the issuer's block (`inv_is_global`).
                                let global = op.peer.is_none_or(|p| p.0 / cpb != t / cpb);
                                s.push(AOp::Inv {
                                    target: ATarget::Range(op.region),
                                    global,
                                    id: plan_op(&mut ops, false, site, i, *op),
                                });
                            }
                        }
                        Scheme::Intra(_) => {
                            for (i, op) in plan.inv.iter().enumerate() {
                                s.push(AOp::Inv {
                                    target: ATarget::Range(op.region),
                                    global: false,
                                    id: plan_op(&mut ops, false, site, i, *op),
                                });
                            }
                        }
                        Scheme::Inter(InterConfig::Hcc | InterConfig::Dragon) => unreachable!(),
                    }
                }
                RecEvent::Barrier { bar, wb, inv } => {
                    if !coherent {
                        match wb {
                            RecSync::All => s.push(AOp::Wb {
                                target: ATarget::All,
                                global: inter,
                                id: None,
                            }),
                            RecSync::None => {}
                            RecSync::Regions(rs) => {
                                for r in rs {
                                    s.push(AOp::Wb {
                                        target: ATarget::Range(*r),
                                        global: inter,
                                        id: None,
                                    });
                                }
                            }
                        }
                    }
                    s.push(AOp::Barrier(*bar));
                    if !coherent {
                        match inv {
                            RecSync::All => s.push(AOp::Inv {
                                target: ATarget::All,
                                global: inter,
                                id: None,
                            }),
                            RecSync::None => {}
                            RecSync::Regions(rs) => {
                                for r in rs {
                                    s.push(AOp::Inv {
                                        target: ATarget::Range(*r),
                                        global: inter,
                                        id: None,
                                    });
                                }
                            }
                        }
                    }
                }
                RecEvent::FlagSet { flag, raw } => {
                    if !raw && !coherent {
                        s.push(AOp::Wb {
                            target: ATarget::All,
                            global: inter,
                            id: None,
                        });
                    }
                    s.push(AOp::FlagSet(*flag));
                }
                RecEvent::FlagWait { flag, raw } => {
                    s.push(AOp::FlagWait(*flag));
                    if !raw && !coherent {
                        s.push(AOp::Inv {
                            target: ATarget::All,
                            global: inter,
                            id: None,
                        });
                    }
                }
                RecEvent::FlagClear { flag } => s.push(AOp::FlagClear(*flag)),
            }
        }
        streams.push(s);
    }
    Lowered { streams, ops }
}

// ----------------------------------------------------------------------
// Abstract memory
// ----------------------------------------------------------------------

const ST_L1: u8 = 0;
const ST_BLOCK: u8 = 1;
const ST_GLOBAL: u8 = 2;

/// Per-word abstract state. `version` numbers writes (0 = the initial
/// value, present everywhere); per-copy fields say which version each
/// cache level currently holds, valid only while the line is resident
/// there (tracked in [`LineState`]).
struct AWord {
    version: u64,
    writer: usize,
    epoch: u32,
    /// How far down the *latest* version has provably travelled.
    state: u8,
    home: usize,
    mem_v: u64,
    l2_v: [u64; MAX_BLOCKS],
    /// Blocks whose L2 copy of this word is dirty.
    l2_dirty: u8,
    l1_v: Box<[u64]>,
    /// Threads whose L1 copy of this word is dirty.
    l1_dirty: u32,
    /// Threads whose L1 copy arrived through the global level (vs
    /// directly from a producer's push into the shared L2).
    l1_via_mem: u32,
    /// Blocks whose L2 copy arrived from the global level.
    l2_via_mem: u8,
    /// Plan ops that pushed the current version into some block's L2.
    carriers_l2: Vec<(u32, usize)>,
    /// Plan ops that pushed the current version to the global level.
    carriers_mem: Vec<u32>,
}

impl AWord {
    fn initial(nthreads: usize) -> AWord {
        AWord {
            version: 0,
            writer: 0,
            epoch: 0,
            state: ST_GLOBAL,
            home: 0,
            mem_v: 0,
            l2_v: [0; MAX_BLOCKS],
            l2_dirty: 0,
            l1_v: vec![0; nthreads].into_boxed_slice(),
            l1_dirty: 0,
            l1_via_mem: 0,
            l2_via_mem: 0,
            carriers_l2: Vec::new(),
            carriers_mem: Vec::new(),
        }
    }
}

/// Which threads' L1s / blocks' L2s hold a line. No evictions: presence
/// only grows until an INV drops it.
#[derive(Default, Clone, Copy)]
struct LineState {
    l1: u32,
    l2: u8,
}

/// Attribution collected for the optimizer: which plan ops some ordered
/// fresh read actually depended on, and for whom.
#[derive(Default)]
pub(crate) struct Attrib {
    /// Ops whose data movement or stale-copy drop served a checked read.
    pub needed: FxHashSet<u32>,
    /// Ops whose *global-level* action (push to / drop at the level
    /// above the block L2) was relied on — these must not be downgraded
    /// to block-local scope.
    pub needs_global: FxHashSet<u32>,
    /// Readers each op served (consumers, for WB downgrades).
    pub served_reader: FxHashMap<u32, FxHashSet<usize>>,
    /// Producers whose values each op exposed (for INV downgrades).
    pub served_writer: FxHashMap<u32, FxHashSet<usize>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Running,
    AtBarrier(usize),
    AtFlag(usize),
    Done,
}

struct RawFinding {
    kind: FindingKind,
    word: u64,
    actor: usize,
    writer: usize,
    epoch: u32,
    hint: Option<SyncRef>,
}

struct BarState {
    waiting: Vec<usize>,
    acc: VectorClock,
}

struct FlagState {
    set: bool,
    clock: VectorClock,
}

struct Interp<'a> {
    rec: &'a ProgramRecord,
    nthreads: usize,
    cpb: usize,
    words: FxHashMap<u64, AWord>,
    lines: FxHashMap<u64, LineState>,
    dirty_l1: Vec<FxHashSet<u64>>,
    dirty_l2: Vec<FxHashSet<u64>>,
    clocks: Vec<VectorClock>,
    next_version: u64,
    step: u64,
    barriers: FxHashMap<usize, BarState>,
    flags: FxHashMap<usize, FlagState>,
    last_release: Vec<Option<SyncRef>>,
    last_acquire: Vec<Option<SyncRef>>,
    findings: Vec<RawFinding>,
    seen: FxHashSet<(u8, u64, usize)>,
    checks: u64,
    poisoned_fills: u64,
    errors: Vec<String>,
    attrib: Option<Attrib>,
    /// Last op that dropped a *stale* copy of (word) from (thread)'s L1.
    l1_drop: FxHashMap<(u64, usize), u32>,
    /// ... and from (block)'s L2.
    l2_drop: FxHashMap<(u64, usize), u32>,
}

impl<'a> Interp<'a> {
    fn new(rec: &'a ProgramRecord, track: bool) -> Interp<'a> {
        let n = rec.nthreads;
        let nblocks = rec.config.machine_config().num_blocks();
        assert!(nblocks <= MAX_BLOCKS, "block count exceeds model limit");
        Interp {
            rec,
            nthreads: n,
            cpb: rec.config.machine_config().cores_per_block(),
            words: FxHashMap::default(),
            lines: FxHashMap::default(),
            dirty_l1: vec![FxHashSet::default(); n],
            dirty_l2: vec![FxHashSet::default(); nblocks],
            clocks: (0..n).map(|t| VectorClock::thread(n, t)).collect(),
            next_version: 1,
            step: 0,
            barriers: FxHashMap::default(),
            flags: FxHashMap::default(),
            last_release: vec![None; n],
            last_acquire: vec![None; n],
            findings: Vec::new(),
            seen: FxHashSet::default(),
            checks: 0,
            poisoned_fills: 0,
            errors: Vec::new(),
            attrib: track.then(Attrib::default),
            l1_drop: FxHashMap::default(),
            l2_drop: FxHashMap::default(),
        }
    }

    fn block_of(&self, t: usize) -> usize {
        t / self.cpb
    }

    fn report(&mut self, f: RawFinding) {
        let tag = match f.kind {
            FindingKind::MissingWb => 0,
            FindingKind::MissingInv => 1,
            FindingKind::WriteRace => 2,
        };
        if self.findings.len() < MAX_RAW_FINDINGS && self.seen.insert((tag, f.word, f.actor)) {
            self.findings.push(f);
        }
    }

    /// Fill `line` into thread `t`'s L1 (and its block's L2 on the way,
    /// as `fetch_into_l1`/`fetch_into_l2` do), refreshing the per-word
    /// copy versions of every materialized word on the line.
    fn fill_line(&mut self, t: usize, line: u64) {
        let b = self.block_of(t);
        let ls = self.lines.entry(line).or_default();
        if ls.l1 & (1 << t) != 0 {
            return;
        }
        let fill_l2 = ls.l2 & (1 << b as u8) == 0;
        ls.l2 |= 1 << b as u8;
        ls.l1 |= 1 << t;
        let mut poisoned = 0u64;
        for i in 0..WORDS_PER_LINE as u64 {
            let w = line * WORDS_PER_LINE as u64 + i;
            if let Some(aw) = self.words.get_mut(&w) {
                // A capture racing with the word's last write is
                // indeterminate: poison it so no later ordered read can
                // benefit from a favorably-interleaved abstract schedule.
                let racy = aw.version != 0 && !self.clocks[t].covers(aw.writer, aw.epoch);
                poisoned += racy as u64;
                if fill_l2 {
                    aw.l2_v[b] = if racy { POISON_V } else { aw.mem_v };
                    aw.l2_dirty &= !(1 << b as u8);
                    aw.l2_via_mem |= 1 << b as u8;
                }
                aw.l1_v[t] = if racy { POISON_V } else { aw.l2_v[b] };
                aw.l1_dirty &= !(1 << t);
                if aw.l2_via_mem & (1 << b as u8) != 0 {
                    aw.l1_via_mem |= 1 << t;
                } else {
                    aw.l1_via_mem &= !(1 << t);
                }
            }
        }
        self.poisoned_fills += poisoned;
    }

    fn read_word(&mut self, t: usize, w: u64) {
        let line = w / WORDS_PER_LINE as u64;
        self.fill_line(t, line);
        let b = self.block_of(t);
        let Some(aw) = self.words.get(&w) else {
            return; // never written: initial value everywhere
        };
        if aw.version == 0 || aw.writer == t {
            return;
        }
        if !self.clocks[t].covers(aw.writer, aw.epoch) {
            return; // unordered: the sanitizer would not check it either
        }
        self.checks += 1;
        let visible = aw.l1_v[t];
        if visible != aw.version {
            let reached = aw.state == ST_GLOBAL || (aw.state == ST_BLOCK && aw.home == b);
            let (kind, hint) = if reached {
                (FindingKind::MissingInv, self.last_acquire[t])
            } else {
                (FindingKind::MissingWb, self.last_release[aw.writer])
            };
            let (writer, epoch) = (aw.writer, aw.epoch);
            self.report(RawFinding {
                kind,
                word: w,
                actor: t,
                writer,
                epoch,
                hint,
            });
        } else if self.attrib.is_some() {
            // Ordered fresh read: credit the ops whose movements put this
            // value on the reader's fill path, and the ops that dropped
            // the stale copies that would otherwise have shadowed it.
            let via_mem = aw.l1_via_mem & (1 << t) != 0;
            let mut credit: Vec<(u32, bool)> = Vec::new();
            if via_mem {
                for &id in &aw.carriers_mem {
                    credit.push((id, true));
                }
                for &(id, _) in &aw.carriers_l2 {
                    credit.push((id, false));
                }
            } else {
                for &(id, blk) in &aw.carriers_l2 {
                    if blk == b {
                        credit.push((id, false));
                    }
                }
            }
            if let Some(&id) = self.l1_drop.get(&(w, t)) {
                credit.push((id, false));
            }
            if let Some(&id) = self.l2_drop.get(&(w, b)) {
                credit.push((id, true));
            }
            let writer = aw.writer;
            let at = self.attrib.as_mut().unwrap();
            for (id, global) in credit {
                at.needed.insert(id);
                if global {
                    at.needs_global.insert(id);
                }
                at.served_reader.entry(id).or_default().insert(t);
                at.served_writer.entry(id).or_default().insert(writer);
            }
        }
    }

    fn write_word(&mut self, t: usize, w: u64) {
        let line = w / WORDS_PER_LINE as u64;
        self.fill_line(t, line); // write-allocate
        let n = self.nthreads;
        let b = self.block_of(t);
        let aw = self.words.entry(w).or_insert_with(|| AWord::initial(n));
        if aw.version != 0 && aw.writer != t && !self.clocks[t].covers(aw.writer, aw.epoch) {
            let (writer, epoch) = (aw.writer, aw.epoch);
            self.report(RawFinding {
                kind: FindingKind::WriteRace,
                word: w,
                actor: t,
                writer,
                epoch,
                hint: None,
            });
        }
        let aw = self.words.get_mut(&w).unwrap();
        aw.version = self.next_version;
        self.next_version += 1;
        aw.writer = t;
        aw.epoch = self.clocks[t].get(t);
        aw.state = ST_L1;
        aw.home = b;
        aw.l1_v[t] = aw.version;
        aw.l1_dirty |= 1 << t;
        aw.l1_via_mem &= !(1 << t);
        aw.carriers_l2.clear();
        aw.carriers_mem.clear();
        self.dirty_l1[t].insert(w);
    }

    /// Push thread `t`'s dirty copy of `w` below its L1: into the block
    /// L2 when it holds the line, else straight to the global level
    /// (`push_below_l1`). Clears the L1 dirty bit; the copy stays valid.
    fn push_l1_copy(&mut self, t: usize, w: u64, id: Option<u32>) {
        let b = self.block_of(t);
        let line = w / WORDS_PER_LINE as u64;
        let l2_holds = self
            .lines
            .get(&line)
            .is_some_and(|ls| ls.l2 & (1 << b as u8) != 0);
        let aw = self.words.get_mut(&w).expect("dirty word is materialized");
        let v = aw.l1_v[t];
        aw.l1_dirty &= !(1 << t);
        if l2_holds {
            aw.l2_v[b] = v;
            aw.l2_dirty |= 1 << b as u8;
            aw.l2_via_mem &= !(1 << b as u8);
            if v == aw.version {
                if aw.state == ST_L1 {
                    aw.state = ST_BLOCK;
                    aw.home = b;
                }
                if let Some(id) = id {
                    aw.carriers_l2.push((id, b));
                }
            }
            self.dirty_l2[b].insert(w);
        } else {
            aw.mem_v = v;
            if v == aw.version {
                aw.state = ST_GLOBAL;
                if let Some(id) = id {
                    aw.carriers_mem.push(id);
                }
            }
        }
        self.dirty_l1[t].remove(&w);
    }

    /// Push block `b`'s dirty L2 copy of `w` to the global level
    /// (`push_below_l2`), clearing the L2 dirty bit.
    fn push_l2_copy(&mut self, b: usize, w: u64, id: Option<u32>) {
        let aw = self.words.get_mut(&w).expect("dirty word is materialized");
        let v = aw.l2_v[b];
        aw.l2_dirty &= !(1 << b as u8);
        aw.mem_v = v;
        if v == aw.version {
            aw.state = ST_GLOBAL;
            if let Some(id) = id {
                aw.carriers_mem.push(id);
            }
        }
        self.dirty_l2[b].remove(&w);
    }

    fn exec_wb(&mut self, t: usize, target: ATarget, global: bool, id: Option<u32>) {
        // L1 phase: push the issuer's dirty words inside the target.
        let work: Vec<u64> = self.dirty_l1[t]
            .iter()
            .copied()
            .filter(|&w| target.covers_word(w))
            .collect();
        for w in work {
            self.push_l1_copy(t, w, id);
        }
        // Global scope: drain the block L2's dirty copies downward too.
        if global {
            let b = self.block_of(t);
            let l2_work: Vec<u64> = self.dirty_l2[b]
                .iter()
                .copied()
                .filter(|&w| target.covers_word(w))
                .collect();
            for w in l2_work {
                self.push_l2_copy(b, w, id);
            }
        }
    }

    /// Drop `line` from thread `t`'s L1 (forced writeback of dirty words
    /// first), recording the op that dropped stale copies.
    fn drop_l1_line(&mut self, t: usize, line: u64, id: Option<u32>) {
        let Some(ls) = self.lines.get_mut(&line) else {
            return;
        };
        if ls.l1 & (1 << t) == 0 {
            return;
        }
        ls.l1 &= !(1 << t);
        for i in 0..WORDS_PER_LINE as u64 {
            let w = line * WORDS_PER_LINE as u64 + i;
            let Some(aw) = self.words.get(&w) else {
                continue;
            };
            if aw.l1_dirty & (1 << t) != 0 {
                self.push_l1_copy(t, w, id);
            }
            let aw = self.words.get(&w).unwrap();
            if aw.l1_v[t] != aw.version {
                if let Some(id) = id {
                    self.l1_drop.insert((w, t), id);
                }
            }
        }
    }

    /// Drop `line` from block `b`'s L2 (forced writeback of dirty words
    /// first). Only global INVs reach the L2.
    fn drop_l2_line(&mut self, b: usize, line: u64, id: Option<u32>) {
        let Some(ls) = self.lines.get_mut(&line) else {
            return;
        };
        if ls.l2 & (1 << b as u8) == 0 {
            return;
        }
        ls.l2 &= !(1 << b as u8);
        for i in 0..WORDS_PER_LINE as u64 {
            let w = line * WORDS_PER_LINE as u64 + i;
            let Some(aw) = self.words.get(&w) else {
                continue;
            };
            if aw.l2_dirty & (1 << b as u8) != 0 {
                self.push_l2_copy(b, w, id);
            }
            let aw = self.words.get(&w).unwrap();
            if aw.l2_v[b] != aw.version {
                if let Some(id) = id {
                    self.l2_drop.insert((w, b), id);
                }
            }
        }
    }

    fn exec_inv(&mut self, t: usize, target: ATarget, global: bool, id: Option<u32>) {
        let b = self.block_of(t);
        match target.line_range() {
            Some((lo, hi)) => {
                for line in lo..hi {
                    self.drop_l1_line(t, line, id);
                    if global {
                        self.drop_l2_line(b, line, id);
                    }
                }
            }
            None => {
                // INV ALL: every line the issuer's L1 (resp. the block's
                // L2) holds.
                let mine: Vec<u64> = self
                    .lines
                    .iter()
                    .filter(|(_, ls)| ls.l1 & (1 << t) != 0)
                    .map(|(&l, _)| l)
                    .collect();
                for line in mine {
                    self.drop_l1_line(t, line, id);
                }
                if global {
                    let blk: Vec<u64> = self
                        .lines
                        .iter()
                        .filter(|(_, ls)| ls.l2 & (1 << b as u8) != 0)
                        .map(|(&l, _)| l)
                        .collect();
                    for line in blk {
                        self.drop_l2_line(b, line, id);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Execute thread `t`'s ops until it parks or finishes. Returns true
    /// if at least one op executed (progress).
    fn advance(&mut self, t: usize, stream: &[AOp], pc: &mut usize, status: &mut [Status]) -> bool {
        if status[t] == Status::Done {
            return false;
        }
        let mut progressed = false;
        loop {
            match status[t] {
                Status::AtBarrier(_) => return progressed,
                Status::AtFlag(f) => {
                    let ready = self.flags.get(&f).is_some_and(|fs| fs.set);
                    if !ready {
                        return progressed;
                    }
                    // Acquire: join the flag's clock.
                    let fs = self.flags.get(&f).unwrap();
                    let clock = fs.clock.clone();
                    self.clocks[t].join(&clock);
                    self.step += 1;
                    self.last_acquire[t] = Some(SyncRef {
                        op: SyncOp::FlagWait,
                        id: f,
                        at: self.step,
                    });
                    status[t] = Status::Running;
                    progressed = true;
                }
                Status::Done => return progressed,
                Status::Running => {
                    if *pc >= stream.len() {
                        status[t] = Status::Done;
                        return progressed;
                    }
                    let op = stream[*pc];
                    *pc += 1;
                    progressed = true;
                    match op {
                        AOp::Read(r) => {
                            for w in r.start.0..r.end().0 {
                                self.read_word(t, w);
                            }
                        }
                        AOp::Write(r) => {
                            for w in r.start.0..r.end().0 {
                                self.write_word(t, w);
                            }
                        }
                        AOp::Wb { target, global, id } => self.exec_wb(t, target, global, id),
                        AOp::Inv { target, global, id } => self.exec_inv(t, target, global, id),
                        AOp::Barrier(bar) => {
                            if self.arrive_barrier(t, bar, status) {
                                continue; // released immediately
                            }
                            return progressed;
                        }
                        AOp::FlagSet(f) => {
                            // Release: the flag's clock absorbs ours, we
                            // start a new epoch.
                            self.step += 1;
                            let n = self.nthreads;
                            let mine = self.clocks[t].clone();
                            let fs = self.flags.entry(f).or_insert_with(|| FlagState {
                                set: false,
                                clock: VectorClock::object(n),
                            });
                            fs.clock.join(&mine);
                            fs.set = true;
                            self.clocks[t].bump(t);
                            self.last_release[t] = Some(SyncRef {
                                op: SyncOp::FlagSet,
                                id: f,
                                at: self.step,
                            });
                        }
                        AOp::FlagWait(f) => {
                            status[t] = Status::AtFlag(f);
                        }
                        AOp::FlagClear(f) => {
                            if let Some(fs) = self.flags.get_mut(&f) {
                                fs.set = false;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Arrive at `bar`; release every waiter (join-all-then-bump, as the
    /// sanitizer's barrier handling does) once the participant count is
    /// reached. Returns true when this arrival released the barrier.
    fn arrive_barrier(&mut self, t: usize, bar: usize, status: &mut [Status]) -> bool {
        let participants = match self.rec.barrier_participants(bar) {
            Some(p) => p,
            None => {
                self.errors
                    .push(format!("thread {t} arrives at undeclared barrier #{bar}"));
                return true; // treat as a no-op barrier
            }
        };
        let n = self.nthreads;
        let st = self.barriers.entry(bar).or_insert_with(|| BarState {
            waiting: Vec::new(),
            acc: VectorClock::object(n),
        });
        st.waiting.push(t);
        st.acc.join(&self.clocks[t]);
        if st.waiting.len() < participants {
            status[t] = Status::AtBarrier(bar);
            return false;
        }
        let waiting = std::mem::take(&mut st.waiting);
        let joined = std::mem::replace(&mut st.acc, VectorClock::object(n));
        self.step += 1;
        let sref = SyncRef {
            op: SyncOp::Barrier,
            id: bar,
            at: self.step,
        };
        for &w in &waiting {
            self.clocks[w] = joined.clone();
            self.clocks[w].bump(w);
            self.last_release[w] = Some(sref);
            self.last_acquire[w] = Some(sref);
            if w != t {
                status[w] = Status::Running;
            }
        }
        true
    }

    fn run(&mut self, streams: &[Vec<AOp>]) {
        let n = self.nthreads;
        let mut pcs = vec![0usize; n];
        let mut status = vec![Status::Running; n];
        loop {
            let mut progressed = false;
            for t in 0..n {
                progressed |= self.advance(t, &streams[t], &mut pcs[t], &mut status);
            }
            if status.iter().all(|&s| s == Status::Done) {
                break;
            }
            if !progressed {
                let stuck: Vec<String> = (0..n)
                    .filter_map(|t| match status[t] {
                        Status::AtBarrier(b) => Some(format!("thread {t} at barrier #{b}")),
                        Status::AtFlag(f) => Some(format!("thread {t} waiting on flag #{f}")),
                        _ => None,
                    })
                    .collect();
                self.errors.push(format!(
                    "the recorded event streams cannot complete: {}",
                    stuck.join(", ")
                ));
                break;
            }
        }
    }

    /// Aggregate raw per-word findings into ranged [`LintFinding`]s.
    fn aggregate(&self) -> Vec<LintFinding> {
        let mut groups: FxHashMap<(u8, usize, usize), Vec<&RawFinding>> = FxHashMap::default();
        let mut order: Vec<(u8, usize, usize)> = Vec::new();
        for f in &self.findings {
            let tag = match f.kind {
                FindingKind::MissingWb => 0,
                FindingKind::MissingInv => 1,
                FindingKind::WriteRace => 2,
            };
            let key = (tag, f.writer, f.actor);
            groups.entry(key).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            groups.get_mut(&key).unwrap().push(f);
        }
        let mut out = Vec::new();
        for key in order {
            let mut fs = groups.remove(&key).unwrap();
            fs.sort_by_key(|f| f.word);
            let mut i = 0;
            while i < fs.len() {
                let mut j = i + 1;
                while j < fs.len() && fs[j].word == fs[j - 1].word + 1 {
                    j += 1;
                }
                let first = fs[i];
                let start = hic_mem::WordAddr(first.word);
                let words = (fs[j - 1].word - first.word) + 1;
                let region = self
                    .rec
                    .locate(start)
                    .map(|(name, idx)| format!("{}[{}..{}]", name, idx, idx + words));
                out.push(LintFinding {
                    kind: first.kind,
                    producer: ThreadId(first.writer),
                    consumer: ThreadId(first.actor),
                    start,
                    words,
                    region,
                    write_epoch: first.epoch,
                    sync_hint: first.hint,
                });
                i = j;
            }
        }
        out
    }
}

/// Lower and interpret `rec`; `track` additionally collects the
/// [`Attrib`] credit sets the optimizer consumes.
pub(crate) fn interp(
    rec: &ProgramRecord,
    track: bool,
) -> (LintReport, Option<Attrib>, Vec<OpInfo>) {
    if rec.config.is_coherent() {
        return (LintReport::trivially_clean(rec.config), None, Vec::new());
    }
    let lowered = lower(rec);
    let mut it = Interp::new(rec, track);
    it.run(&lowered.streams);
    let mut coverage = coverage_of(&lowered.streams);
    coverage.poisoned_fills = it.poisoned_fills;
    let report = LintReport {
        config: rec.config,
        findings: it.aggregate(),
        errors: std::mem::take(&mut it.errors),
        checks: it.checks,
        tracked_words: it.words.len(),
        coverage,
    };
    (report, it.attrib.take(), lowered.ops)
}

/// Count what the lowered streams exercise — the static half of
/// [`LintCoverage`] (the interpreter fills in the dynamic counters).
fn coverage_of(streams: &[Vec<AOp>]) -> LintCoverage {
    let mut cov = LintCoverage::default();
    for op in streams.iter().flatten() {
        match op {
            AOp::Read(_) => cov.reads += 1,
            AOp::Write(_) => cov.writes += 1,
            AOp::Wb { target, global, .. } => {
                if *global {
                    cov.wb_global += 1;
                } else {
                    cov.wb_local += 1;
                }
                if matches!(target, ATarget::All) {
                    cov.wb_all += 1;
                }
            }
            AOp::Inv { target, global, .. } => {
                if *global {
                    cov.inv_global += 1;
                } else {
                    cov.inv_local += 1;
                }
                if matches!(target, ATarget::All) {
                    cov.inv_all += 1;
                }
            }
            AOp::Barrier(_) => cov.barriers += 1,
            AOp::FlagSet(_) => cov.flag_sets += 1,
            AOp::FlagWait(_) => cov.flag_waits += 1,
            AOp::FlagClear(_) => cov.flag_clears += 1,
        }
    }
    cov
}
