//! `hic-lint` — static plan verification and optimization.
//!
//! The dynamic sanitizer (`hic-check`) catches a missing WB/INV when a
//! run happens to trip over it. This crate proves the property *before a
//! single cycle is simulated*: given a [`ProgramRecord`] — the program's
//! sync structure, per-epoch region access summaries, and the
//! [`EpochPlan`](hic_runtime::EpochPlan) passed at every `plan_wb` /
//! `plan_inv` call site — [`lint`] shows that every sync-ordered
//! cross-thread read observes the latest ordered write under the
//! record's configuration, or reports which WB (producer side) or INV
//! (consumer side) is missing, over which `region[range]`, and which
//! sync op should carry it.
//!
//! [`optimize`] goes further on a clean program: it prunes plan ops no
//! ordered read depends on, downgrades `peer: None` ops whose consumers
//! (WB) or producers (INV) are statically known to share a block —
//! recovering the paper's level-adaptive `WB_CONS`/`INV_PROD` savings
//! (§V-B) without an oracle — and coalesces adjacent regions. The
//! resulting [`PlanOverrides`](hic_runtime::PlanOverrides) substitute at
//! the same call sites via
//! [`ProgramBuilder::override_plans`](hic_runtime::ProgramBuilder::override_plans),
//! and are re-verified before being returned.
//!
//! The abstract memory model mirrors the incoherent machine's
//! visibility rules (see `exec`'s module docs) but not its timing, and
//! models no evictions — so static findings are a superset of anything a
//! timed run can observe: a clean lint is a proof, a finding is a real
//! plan deficiency.

mod exec;
mod optimize;
mod report;

pub use optimize::{apply_overrides, optimize};
pub use report::{json_str, LintCoverage, LintFinding, LintReport, OptOutcome, OptStats};

use hic_runtime::ProgramRecord;

/// Statically verify WB/INV sufficiency of a recorded program.
pub fn lint(rec: &ProgramRecord) -> LintReport {
    exec::interp(rec, false).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hic_check::FindingKind;
    use hic_runtime::{
        CommOp, Config, EpochPlan, InterConfig, IntraConfig, ProgramBuilder, RecSync,
    };
    use hic_sim::ThreadId;

    /// Two-thread producer/consumer over one line, epoch-style: t0
    /// writes, both barrier, t1 reads. `wb`/`inv` toggle the plan halves.
    fn pair_record(cfg: Config, wb: bool, inv: bool) -> ProgramRecord {
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let bar = p.barrier_of(2);
        let mut rec = p.record(2);
        let wb_plan = if wb {
            EpochPlan::new().with_wb(CommOp::known(data, ThreadId(1)))
        } else {
            EpochPlan::new()
        };
        let inv_plan = if inv {
            EpochPlan::new().with_inv(CommOp::known(data, ThreadId(0)))
        } else {
            EpochPlan::new()
        };
        rec.thread(0)
            .writes(data)
            .plan_wb(&wb_plan)
            .plan_barrier(bar);
        rec.thread(1)
            .reads(data) // warm-up: capture a stale copy
            .plan_barrier(bar)
            .plan_inv(&inv_plan)
            .reads(data);
        rec
    }

    #[test]
    fn complete_plan_is_clean() {
        for cfg in [
            Config::Inter(InterConfig::Addr),
            Config::Inter(InterConfig::AddrL),
            Config::Intra(IntraConfig::Base),
        ] {
            let r = lint(&pair_record(cfg, true, true));
            assert!(r.is_clean(), "{}: {}", cfg.name(), r.render());
            assert!(r.checks >= 16);
        }
    }

    #[test]
    fn missing_wb_is_attributed_to_the_producer() {
        let r = lint(&pair_record(Config::Inter(InterConfig::Addr), false, true));
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        let f = &r.findings[0];
        assert_eq!(f.kind, FindingKind::MissingWb);
        assert_eq!(f.producer, ThreadId(0));
        assert_eq!(f.consumer, ThreadId(1));
        assert_eq!(f.words, 16);
        assert!(f.region.as_deref().unwrap().starts_with("data["));
        assert!(f.sync_hint.is_some(), "barrier should carry the WB");
    }

    #[test]
    fn missing_inv_is_attributed_to_the_consumer() {
        let r = lint(&pair_record(Config::Inter(InterConfig::Addr), true, false));
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        let f = &r.findings[0];
        assert_eq!(f.kind, FindingKind::MissingInv, "{}", f.render());
        assert_eq!(f.producer, ThreadId(0));
        assert_eq!(f.consumer, ThreadId(1));
    }

    #[test]
    fn hcc_needs_no_plans() {
        let r = lint(&pair_record(Config::Inter(InterConfig::Hcc), false, false));
        assert!(r.is_clean());
    }

    #[test]
    fn base_barrier_all_is_sufficient_without_plans() {
        // Model 1: WB ALL / INV ALL carried by the barrier itself.
        let cfg = Config::Inter(InterConfig::Base);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 32);
        let bar = p.barrier_of(2);
        let mut rec = p.record(2);
        rec.thread(0).writes(data).barrier(bar);
        rec.thread(1).reads(data).barrier(bar).reads(data);
        let r = lint(&rec);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unordered_reads_are_not_checked() {
        // No sync between writer and reader: nothing to verify (the
        // dynamic checker would stay silent too — that is a race, only
        // flagged when both sides *write*).
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let mut rec = p.record(2);
        rec.thread(0).writes(data);
        rec.thread(1).reads(data);
        let r = lint(&rec);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn conflicting_unordered_writes_are_a_race() {
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 4);
        let mut rec = p.record(2);
        rec.thread(0).writes(data);
        rec.thread(1).writes(data);
        let r = lint(&rec);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, FindingKind::WriteRace);
    }

    #[test]
    fn flag_sync_orders_and_carries_data() {
        let cfg = Config::Intra(IntraConfig::Base);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("payload", 16);
        let f = p.flag();
        let mut rec = p.record(2);
        rec.thread(0).writes(data).flag_set(f, false);
        rec.thread(1).flag_wait(f, false).reads(data);
        let r = lint(&rec);
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.checks >= 16);

        // Raw flag (no carried WB/INV): same ordering, stale data.
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("payload", 16);
        let f = p.flag();
        let mut rec = p.record(2);
        rec.thread(0).writes(data).flag_set(f, true);
        rec.thread(1).reads(data).flag_wait(f, true).reads(data);
        let r = lint(&rec);
        assert!(!r.is_clean());
        assert_eq!(r.findings[0].kind, FindingKind::MissingWb);
    }

    #[test]
    fn deadlocked_record_is_a_structure_error() {
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let f = p.flag();
        let mut rec = p.record(2);
        rec.thread(0).flag_wait(f, true); // nobody sets it
        let r = lint(&rec);
        assert!(!r.errors.is_empty());
        assert!(r.errors[0].contains("flag"), "{}", r.errors[0]);
    }

    #[test]
    fn optimizer_prunes_dead_and_duplicate_ops() {
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let dead = p.alloc_named("dead", 16);
        let bar = p.barrier_of(2);
        let mut rec = p.record(2);
        // t0 writes both regions but only `data` has a consumer; the WB
        // of `dead` and the duplicated ops are all redundant.
        let wb = EpochPlan::new()
            .with_wb(CommOp::unknown(data))
            .with_wb(CommOp::unknown(data))
            .with_wb(CommOp::unknown(dead));
        let inv = EpochPlan::new()
            .with_inv(CommOp::unknown(data))
            .with_inv(CommOp::unknown(data));
        rec.thread(0)
            .writes(data)
            .writes(dead)
            .plan_wb(&wb)
            .plan_barrier(bar);
        rec.thread(1)
            .reads(data)
            .plan_barrier(bar)
            .plan_inv(&inv)
            .reads(data);
        let out = optimize(&rec);
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out.reverify.is_clean(), "{}", out.reverify.render());
        assert!(!out.stats.fallback);
        assert_eq!(out.stats.ops_before, 5);
        // data-WB + data-INV survive; the duplicates and the dead WB go.
        assert_eq!(out.stats.ops_after, 2, "{}", out.stats.render());
        assert_eq!(out.stats.pruned, 3);
        assert_eq!(out.overrides.num_overridden(), 2);
    }

    #[test]
    fn optimizer_downgrades_known_local_peers_under_addr_l() {
        let cfg = Config::Inter(InterConfig::AddrL);
        let cpb = cfg.machine_config().cores_per_block();
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let bar = p.barrier_of(cpb);
        let mut rec = p.record(cpb); // all threads in block 0
        let wb = EpochPlan::new().with_wb(CommOp::unknown(data));
        let inv = EpochPlan::new().with_inv(CommOp::unknown(data));
        rec.thread(0).writes(data).plan_wb(&wb).plan_barrier(bar);
        for t in 1..cpb {
            rec.thread(t)
                .reads(data)
                .plan_barrier(bar)
                .plan_inv(&inv)
                .reads(data);
        }
        let out = optimize(&rec);
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out.reverify.is_clean(), "{}", out.reverify.render());
        // The WB's consumers and every INV's producer sit in block 0:
        // all of them downgrade to a named peer (block-local scope).
        assert_eq!(out.stats.downgraded, cpb, "{}", out.stats.render());
        let o = out.overrides.wb_at(0, 0).expect("wb site rewritten");
        assert_eq!(o.wb[0].peer, Some(ThreadId(1)));
    }

    #[test]
    fn host_peeked_writebacks_are_pinned() {
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let bar = p.barrier_of(2);
        let mut rec = p.record(2);
        rec.host_reads(data);
        // No simulated consumer at all — but the host peeks `data`, so
        // the final WB must survive.
        let wb = EpochPlan::new().with_wb(CommOp::unknown(data));
        rec.thread(0).writes(data).plan_wb(&wb).plan_barrier(bar);
        rec.thread(1).plan_barrier(bar);
        let out = optimize(&rec);
        assert!(out.report.is_clean());
        assert_eq!(out.stats.pruned, 0);
        assert!(out.overrides.is_empty());
    }

    #[test]
    fn barrier_sync_data_regions_lower_like_barrier_with() {
        // A barrier carrying Regions sync data moves exactly those
        // regions — enough for `data`, not for `other`.
        let cfg = Config::Inter(InterConfig::Addr);
        let mut p = ProgramBuilder::new(cfg);
        let data = p.alloc_named("data", 16);
        let other = p.alloc_named("other", 16);
        let bar = p.barrier_of(2);
        let mut rec = p.record(2);
        let sync = RecSync::Regions(vec![data]);
        rec.thread(0)
            .writes(data)
            .writes(other)
            .barrier_with(bar, sync.clone(), RecSync::None);
        rec.thread(1)
            .reads(data)
            .reads(other)
            .barrier_with(bar, RecSync::None, sync)
            .reads(data)
            .reads(other);
        let r = lint(&rec);
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        assert_eq!(r.findings[0].kind, FindingKind::MissingWb);
        assert!(r.findings[0]
            .region
            .as_deref()
            .unwrap()
            .starts_with("other["));
    }
}
