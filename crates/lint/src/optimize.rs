//! The plan optimizer: prune, downgrade, coalesce — then re-verify.
//!
//! Works on the attribution the verifier collects ([`Attrib`]): which
//! plan ops some sync-ordered fresh read actually depended on, whether
//! the dependence involved the op's global-level action, and which
//! threads were on each end. From that:
//!
//! * an op no checked read ever depended on is **pruned** (its data
//!   either had no ordered consumer, or another op already moved it);
//! * a `peer: None` op whose observed peers all sit in the issuer's
//!   block is **downgraded** to `peer: Some(...)` — under `Addr+L` the
//!   scope resolution then keeps it block-local, which is exactly the
//!   level-adaptive behaviour the paper gets from a perfect analysis
//!   (§V-B);
//! * surviving ops are **coalesced** ([`hic_runtime::coalesce_ops`]).
//!
//! Rewriting iterates to a fixed point: a consumer's *global* INV forces
//! its reads onto the memory path, which makes the producer's WB look
//! global-needed — once the INV is downgraded, the next attribution pass
//! sees the read served from the shared L2 and can downgrade the WB too.
//!
//! WB ops covering a region the host peeks after the run are *pinned*
//! (never pruned or downgraded): `peek` reads below the L1s, so those
//! writebacks are consumed outside the recorded program.
//!
//! The result is re-verified: the minimized record must itself lint
//! clean, or the overrides are discarded (`fallback`). Pruning is
//! attribution-complete by construction, so the fallback is a safety
//! net, not a code path programs are expected to hit.

use fxhash::FxHashMap;
use hic_mem::Region;
use hic_runtime::{
    coalesce_ops, CommOp, Config, EpochPlan, InterConfig, PlanOverrides, ProgramRecord, RecEvent,
};
use hic_sim::ThreadId;

use crate::exec::{interp, Attrib, OpInfo};
use crate::report::{LintReport, OptOutcome, OptStats};

/// Fixed-point cap; each round must strictly shrink or re-scope some op,
/// so real programs converge in two or three.
const MAX_ROUNDS: usize = 4;

fn intersects(a: Region, b: Region) -> bool {
    a.words > 0 && b.words > 0 && a.start.0 < b.end().0 && b.start.0 < a.end().0
}

/// One rewrite pass over `current`'s plan ops. Returns the per-site
/// substitutions that change something, or an empty list at the fixed
/// point.
#[allow(clippy::too_many_arguments)]
fn rewrite_round(
    rec: &ProgramRecord,
    current: &ProgramRecord,
    attrib: &Attrib,
    ops: &[OpInfo],
    stats: &mut OptStats,
) -> Vec<(usize, bool, usize, EpochPlan)> {
    let cpb = current.config.machine_config().cores_per_block();
    let addr_l = current.config == Config::Inter(InterConfig::AddrL);
    let mut kept: Vec<Option<CommOp>> = Vec::with_capacity(ops.len());
    let mut round_pruned = 0usize;
    let mut round_downgraded = 0usize;
    for (i, info) in ops.iter().enumerate() {
        let id = i as u32;
        // Pinning is against the *original* record's host reads.
        let pinned = info.is_wb
            && rec
                .host_reads
                .iter()
                .any(|&hr| intersects(info.op.region, hr));
        if pinned {
            kept.push(Some(info.op));
            continue;
        }
        if !attrib.needed.contains(&id) {
            kept.push(None);
            round_pruned += 1;
            continue;
        }
        let mut op = info.op;
        if addr_l && op.peer.is_none() && !attrib.needs_global.contains(&id) {
            // The observed peers: consumers for a WB, producers for an INV.
            let served = if info.is_wb {
                attrib.served_reader.get(&id)
            } else {
                attrib.served_writer.get(&id)
            };
            if let Some(served) = served {
                let issuer_block = info.thread / cpb;
                if !served.is_empty() && served.iter().all(|&p| p / cpb == issuer_block) {
                    // All peers local: naming any one of them makes the
                    // op block-local under the Addr+L scope rules.
                    op.peer = Some(ThreadId(*served.iter().min().unwrap()));
                    round_downgraded += 1;
                }
            }
        }
        kept.push(Some(op));
    }

    // Regroup by plan call site; emit substitutions for changed sites.
    let mut sites: FxHashMap<(usize, bool, usize), Vec<(usize, usize)>> = FxHashMap::default();
    for (i, info) in ops.iter().enumerate() {
        sites
            .entry((info.thread, info.is_wb, info.site))
            .or_default()
            .push((info.index, i));
    }
    let mut delta = Vec::new();
    for ((t, is_wb, site), mut members) in sites {
        members.sort_by_key(|&(index, _)| index);
        let original: Vec<CommOp> = members.iter().map(|&(_, i)| ops[i].op).collect();
        let surviving: Vec<CommOp> = members.iter().filter_map(|&(_, i)| kept[i]).collect();
        let minimized = coalesce_ops(&surviving);
        if minimized == original {
            continue;
        }
        let plan = if is_wb {
            EpochPlan {
                wb: minimized,
                inv: Vec::new(),
            }
        } else {
            EpochPlan {
                wb: Vec::new(),
                inv: minimized,
            }
        };
        delta.push((t, is_wb, site, plan));
    }
    if !delta.is_empty() {
        stats.pruned += round_pruned;
        stats.downgraded += round_downgraded;
    }
    delta
}

fn plan_op_count(rec: &ProgramRecord) -> usize {
    rec.threads
        .iter()
        .flatten()
        .map(|ev| match ev {
            RecEvent::PlanWb(p) => p.wb.len(),
            RecEvent::PlanInv(p) => p.inv.len(),
            _ => 0,
        })
        .sum()
}

/// Verify `rec` and, when clean, compute minimized [`PlanOverrides`].
pub fn optimize(rec: &ProgramRecord) -> OptOutcome {
    let (report, attrib, ops) = interp(rec, true);
    let mut stats = OptStats {
        ops_before: ops.len(),
        ops_after: ops.len(),
        ..OptStats::default()
    };
    let identity = |report: LintReport, stats: OptStats| {
        let reverify = report.clone();
        OptOutcome {
            report,
            overrides: PlanOverrides::new(rec.nthreads),
            stats,
            reverify,
        }
    };
    // Nothing to rewrite: plans are ignored (HCC, inter Base), the
    // record has no plan ops at all, or it is not even correct yet.
    if !report.is_clean() || ops.is_empty() {
        return identity(report, stats);
    }

    let mut acc = PlanOverrides::new(rec.nthreads);
    let mut current = rec.clone();
    let mut cur_attrib = attrib.unwrap_or_default();
    let mut cur_ops = ops;
    for _ in 0..MAX_ROUNDS {
        let delta = rewrite_round(rec, &current, &cur_attrib, &cur_ops, &mut stats);
        if delta.is_empty() {
            break;
        }
        for (t, is_wb, site, plan) in delta {
            if is_wb {
                acc.set_wb(t, site, plan);
            } else {
                acc.set_inv(t, site, plan);
            }
        }
        current = apply_overrides(rec, &acc);
        let (rep, at, o) = interp(&current, true);
        if !rep.is_clean() {
            break; // re-verification below falls back
        }
        cur_attrib = at.unwrap_or_default();
        cur_ops = o;
    }
    if acc.is_empty() {
        return identity(report, stats);
    }
    stats.ops_after = plan_op_count(&current);
    stats.sites_overridden = acc.num_overridden();

    // Safety net: the minimized record must itself verify clean.
    let reverify = interp(&current, false).0;
    if !reverify.is_clean() {
        stats.fallback = true;
        stats.ops_after = stats.ops_before;
        stats.pruned = 0;
        stats.downgraded = 0;
        stats.sites_overridden = 0;
        return OptOutcome {
            report,
            overrides: PlanOverrides::new(rec.nthreads),
            stats,
            reverify,
        };
    }
    OptOutcome {
        report,
        overrides: acc,
        stats,
        reverify,
    }
}

/// The record with `overrides` substituted at the matching plan call
/// sites — what the runtime will actually issue.
pub fn apply_overrides(rec: &ProgramRecord, overrides: &PlanOverrides) -> ProgramRecord {
    let mut out = rec.clone();
    for (t, events) in out.threads.iter_mut().enumerate() {
        let (mut wb_site, mut inv_site) = (0usize, 0usize);
        for ev in events.iter_mut() {
            match ev {
                RecEvent::PlanWb(plan) => {
                    if let Some(o) = overrides.wb_at(t, wb_site) {
                        *plan = o.clone();
                    }
                    wb_site += 1;
                }
                RecEvent::PlanInv(plan) => {
                    if let Some(o) = overrides.inv_at(t, inv_site) {
                        *plan = o.clone();
                    }
                    inv_site += 1;
                }
                _ => {}
            }
        }
    }
    out
}
