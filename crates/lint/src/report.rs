//! Lint findings and reports.
//!
//! `hic-lint` findings deliberately mirror the dynamic sanitizer's
//! [`hic_check::Finding`]s — same kinds, same producer/consumer
//! attribution, same "which sync op should have carried the fix" hint —
//! but they are *ranges*, not single faulty accesses: the static analysis
//! sees the whole region summary at once, so one missing WB surfaces as
//! one finding over the full uncovered range instead of up to
//! `MAX_FINDINGS` per-word reports.

use hic_check::{FindingKind, SyncRef};
use hic_mem::{Region, WordAddr};
use hic_runtime::{Config, PlanOverrides};
use hic_sim::ThreadId;

/// Quote and escape `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which parts of the static analysis a verification exercised — the
/// coverage signal the fuzzer's generation feedback loop consumes.
/// Counters over the *lowered* abstract-op streams (so they reflect the
/// per-config lowering rules, not the record's surface syntax) plus the
/// interpreter events that only some programs reach.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintCoverage {
    /// Lowered region-read / region-write events.
    pub reads: u64,
    pub writes: u64,
    /// Lowered WB instructions by scope (block-local vs global).
    pub wb_local: u64,
    pub wb_global: u64,
    /// ... and INV instructions.
    pub inv_local: u64,
    pub inv_global: u64,
    /// WB/INV with an `ALL` target (vs an address range).
    pub wb_all: u64,
    pub inv_all: u64,
    /// Lowered sync ops.
    pub barriers: u64,
    pub flag_sets: u64,
    pub flag_waits: u64,
    pub flag_clears: u64,
    /// Line fills whose captured copy raced the word's last write and was
    /// poisoned (the schedule-independence pessimization fired).
    pub poisoned_fills: u64,
}

impl LintCoverage {
    /// Accumulate another report's coverage into this one.
    pub fn merge(&mut self, o: &LintCoverage) {
        for (mine, theirs) in self
            .features_mut()
            .into_iter()
            .zip(o.features().iter().map(|&(_, v)| v))
        {
            *mine.1 += theirs;
        }
    }

    /// Named counters, in a stable order.
    pub fn features(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("reads", self.reads),
            ("writes", self.writes),
            ("wb_local", self.wb_local),
            ("wb_global", self.wb_global),
            ("inv_local", self.inv_local),
            ("inv_global", self.inv_global),
            ("wb_all", self.wb_all),
            ("inv_all", self.inv_all),
            ("barriers", self.barriers),
            ("flag_sets", self.flag_sets),
            ("flag_waits", self.flag_waits),
            ("flag_clears", self.flag_clears),
            ("poisoned_fills", self.poisoned_fills),
        ]
    }

    fn features_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![
            ("reads", &mut self.reads),
            ("writes", &mut self.writes),
            ("wb_local", &mut self.wb_local),
            ("wb_global", &mut self.wb_global),
            ("inv_local", &mut self.inv_local),
            ("inv_global", &mut self.inv_global),
            ("wb_all", &mut self.wb_all),
            ("inv_all", &mut self.inv_all),
            ("barriers", &mut self.barriers),
            ("flag_sets", &mut self.flag_sets),
            ("flag_waits", &mut self.flag_waits),
            ("flag_clears", &mut self.flag_clears),
            ("poisoned_fills", &mut self.poisoned_fills),
        ]
    }

    /// One stable JSON object, all counters by name.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .features()
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

/// One statically-proven protocol violation over a word range.
#[derive(Debug, Clone)]
pub struct LintFinding {
    pub kind: FindingKind,
    /// The thread whose writes go stale (the producer).
    pub producer: ThreadId,
    /// The thread whose ordered reads observe the stale value.
    pub consumer: ThreadId,
    /// First affected word.
    pub start: WordAddr,
    /// Number of contiguous affected words.
    pub words: u64,
    /// `name[lo..hi]` within the containing allocation, when named.
    pub region: Option<String>,
    /// The producer's epoch whose values never arrive.
    pub write_epoch: u32,
    /// The sync op that should have carried the missing WB (producer's
    /// release) or INV (consumer's acquire).
    pub sync_hint: Option<SyncRef>,
}

impl LintFinding {
    /// The affected range as a [`Region`].
    pub fn range(&self) -> Region {
        Region::new(self.start, self.words)
    }

    /// Does this finding explain a dynamic sanitizer finding? Same kind,
    /// same producer/consumer pair, faulty word inside the range.
    pub fn explains(&self, f: &hic_check::Finding) -> bool {
        self.kind == f.kind
            && self.producer == f.writer
            && self.consumer == f.actor
            && self.range().contains(f.addr)
    }

    /// One-line human-readable report.
    pub fn render(&self) -> String {
        let loc = match &self.region {
            Some(r) => format!(
                "{} (words {:#x}..{:#x})",
                r,
                self.start.0,
                self.start.0 + self.words
            ),
            None => format!(
                "words {:#x}..{:#x}",
                self.start.0,
                self.start.0 + self.words
            ),
        };
        let (side, who) = match self.kind {
            FindingKind::MissingWb => ("WB", self.producer),
            FindingKind::MissingInv => ("INV", self.consumer),
            FindingKind::WriteRace => ("sync", self.consumer),
        };
        let hint = match (&self.sync_hint, self.kind) {
            (_, FindingKind::WriteRace) => String::new(),
            (Some(s), _) => format!(" — a {side} covering it should travel with {who}'s {s}"),
            (None, _) => format!(" — no sync op by {who} could carry the {side} at all"),
        };
        format!(
            "{}: {} -> {}: {} (producer epoch {}){}",
            self.kind.label(),
            self.producer,
            self.consumer,
            loc,
            self.write_epoch,
            hint
        )
    }

    /// Stable machine-readable JSON object (the `--json` schema).
    pub fn to_json(&self) -> String {
        let region = match &self.region {
            Some(r) => json_str(r),
            None => "null".to_string(),
        };
        let hint = match &self.sync_hint {
            Some(s) => format!(
                "{{\"op\":{},\"id\":{},\"at\":{}}}",
                json_str(s.op.tag()),
                s.id,
                s.at
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":{},\"producer\":{},\"consumer\":{},\"start\":{},\"words\":{},\
             \"region\":{},\"write_epoch\":{},\"sync_hint\":{}}}",
            json_str(self.kind.tag()),
            self.producer.0,
            self.consumer.0,
            self.start.0,
            self.words,
            region,
            self.write_epoch,
            hint
        )
    }
}

/// The outcome of statically verifying one [`hic_runtime::ProgramRecord`].
#[derive(Debug, Clone)]
pub struct LintReport {
    pub config: Config,
    /// Range-aggregated findings, in discovery order.
    pub findings: Vec<LintFinding>,
    /// Structural problems with the record itself (deadlocked barrier,
    /// flag never set, event streams that cannot interleave). A report
    /// with errors proves nothing about the program.
    pub errors: Vec<String>,
    /// Ordered cross-thread reads the verifier checked.
    pub checks: u64,
    /// Distinct words the abstract memory model materialized.
    pub tracked_words: usize,
    /// What the verification exercised (fuzzer steering signal).
    pub coverage: LintCoverage,
}

impl LintReport {
    /// A report for a configuration that needs no verification (HCC:
    /// hardware moves the data).
    pub fn trivially_clean(config: Config) -> LintReport {
        LintReport {
            config,
            findings: Vec::new(),
            errors: Vec::new(),
            checks: 0,
            tracked_words: 0,
            coverage: LintCoverage::default(),
        }
    }

    /// No findings and no structural errors.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.errors.is_empty()
    }

    /// Does some static finding explain the dynamic finding `f`?
    pub fn covers(&self, f: &hic_check::Finding) -> bool {
        self.findings.iter().any(|lf| lf.explains(f))
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str(&format!(
                "clean: {} ordered cross-thread reads verified over {} words\n",
                self.checks, self.tracked_words
            ));
        }
        out
    }

    /// Stable machine-readable JSON object (the `--json` schema).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(LintFinding::to_json).collect();
        let errors: Vec<String> = self.errors.iter().map(|e| json_str(e)).collect();
        format!(
            "{{\"config\":{},\"clean\":{},\"findings\":[{}],\"errors\":[{}],\
             \"checks\":{},\"tracked_words\":{},\"coverage\":{}}}",
            json_str(self.config.name()),
            self.is_clean(),
            findings.join(","),
            errors.join(","),
            self.checks,
            self.tracked_words,
            self.coverage.to_json()
        )
    }
}

/// What the optimizer did to the plans.
#[derive(Debug, Clone, Default)]
pub struct OptStats {
    /// Planned WB/INV operations across all plan call sites, before.
    pub ops_before: usize,
    /// ... and after pruning / downgrading / coalescing.
    pub ops_after: usize,
    /// Ops removed because no ordered read ever consumed what they moved.
    pub pruned: usize,
    /// `peer: None` ops given a statically-known local peer, turning a
    /// global WB/INV into a block-local one under `Addr+L`.
    pub downgraded: usize,
    /// Plan call sites whose plan was replaced.
    pub sites_overridden: usize,
    /// The minimized plans failed re-verification and were discarded
    /// (the returned overrides are empty). Should never happen; present
    /// as a safety net, not a normal outcome.
    pub fallback: bool,
}

impl OptStats {
    pub fn render(&self) -> String {
        format!(
            "plan ops {} -> {} ({} pruned, {} downgraded, {} sites rewritten){}",
            self.ops_before,
            self.ops_after,
            self.pruned,
            self.downgraded,
            self.sites_overridden,
            if self.fallback {
                " [re-verification failed: overrides discarded]"
            } else {
                ""
            }
        )
    }

    /// Stable machine-readable JSON object (the `--json` schema).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ops_before\":{},\"ops_after\":{},\"pruned\":{},\"downgraded\":{},\
             \"sites_overridden\":{},\"fallback\":{}}}",
            self.ops_before,
            self.ops_after,
            self.pruned,
            self.downgraded,
            self.sites_overridden,
            self.fallback
        )
    }
}

/// The outcome of [`crate::optimize`]: the verification report of the
/// original program, the minimized plan substitutions, and the proof that
/// the minimized program is still sufficient.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// Verification of the *original* record (optimization only proceeds
    /// when this is clean).
    pub report: LintReport,
    /// Per-call-site plan substitutions for
    /// [`hic_runtime::ProgramBuilder::override_plans`]. Empty when the
    /// original record has findings or the config ignores plans.
    pub overrides: PlanOverrides,
    pub stats: OptStats,
    /// Verification of the record with the minimized plans applied.
    pub reverify: LintReport,
}
