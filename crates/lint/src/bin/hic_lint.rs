//! `hic-lint` — statically verify and optimize the recorded app suite.
//!
//! For every app that exposes a [`ProgramRecord`](hic_runtime::ProgramRecord)
//! and every incoherent inter-block configuration, verify WB/INV
//! sufficiency (no cycle simulated), then run the optimizer and report
//! what it pruned / downgraded. Exit status is nonzero when any record
//! has findings or structural errors.
//!
//! `--json` emits one machine-readable document instead of the human
//! report (same exit status): `{"records":[{"app","config","report",
//! "opt"}],"checked":N,"dirty":N}` with the stable finding schema of
//! [`LintFinding::to_json`](hic_lint::LintFinding::to_json).
//!
//! Usage: `hic-lint [--scale test|small] [--json] [--verbose] [name-filter ...]`

use hic_apps::inter::ep::EpHier;
use hic_apps::{inter_apps, App, Scale};
use hic_lint::{json_str, lint, optimize};
use hic_runtime::{Config, InterConfig};

fn main() {
    let mut scale = Scale::Test;
    let mut verbose = false;
    let mut json = false;
    let mut filters: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: hic-lint [--scale test|small|paper] [--json] [--verbose] [name ...]"
                );
                return;
            }
            f => filters.push(f.to_ascii_lowercase()),
        }
    }

    let mut apps: Vec<Box<dyn App>> = inter_apps(scale);
    apps.push(Box::new(EpHier::new(scale)));
    let configs = [
        Config::Inter(InterConfig::Base),
        Config::Inter(InterConfig::Addr),
        Config::Inter(InterConfig::AddrL),
    ];

    let mut checked = 0usize;
    let mut dirty = 0usize;
    let mut records: Vec<String> = Vec::new();
    for app in &apps {
        let name = app.name();
        if !filters.is_empty()
            && !filters
                .iter()
                .any(|f| name.to_ascii_lowercase().contains(f))
        {
            continue;
        }
        let mut any_record = false;
        for config in configs {
            let Some(rec) = app.record(config) else {
                continue;
            };
            any_record = true;
            checked += 1;
            let report = lint(&rec);
            if !report.is_clean() {
                dirty += 1;
            }
            if json {
                let opt = if report.is_clean() {
                    let out = optimize(&rec);
                    format!("{{\"stats\":{},\"clean\":true}}", out.stats.to_json())
                } else {
                    "null".to_string()
                };
                records.push(format!(
                    "{{\"app\":{},\"config\":{},\"report\":{},\"opt\":{}}}",
                    json_str(name),
                    json_str(config.name()),
                    report.to_json(),
                    opt
                ));
                continue;
            }
            if report.is_clean() {
                let out = optimize(&rec);
                println!(
                    "{name:>8} {:<6} clean ({} checks, {} words) | {}",
                    config.name(),
                    report.checks,
                    report.tracked_words,
                    out.stats.render()
                );
                if verbose && !out.overrides.is_empty() {
                    println!("         reverify: {}", out.reverify.render().trim_end());
                }
            } else {
                println!(
                    "{name:>8} {:<6} {} finding(s), {} error(s)",
                    config.name(),
                    report.findings.len(),
                    report.errors.len()
                );
                print!("{}", report.render());
            }
        }
        if !any_record && !json {
            println!("{name:>8} (no record — skipped)");
        }
    }
    if json {
        println!(
            "{{\"records\":[{}],\"checked\":{checked},\"dirty\":{dirty}}}",
            records.join(",")
        );
    } else {
        println!("---");
        println!("{checked} records linted, {dirty} with findings");
    }
    if dirty > 0 {
        std::process::exit(1);
    }
}
