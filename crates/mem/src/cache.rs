//! A set-associative, write-back cache with per-word dirty bits.
//!
//! This is the storage structure shared by L1, L2 banks, and L3 banks.
//! Per-word dirty bits are the key hardware feature the paper relies on
//! (§III-B): a writeback transfers *only dirty words*, so two cores that
//! write disjoint words of the same line never overwrite each other's data.
//!
//! The cache stores real word values. It is policy-free: callers decide
//! when lines move. Evictions return the victim so the caller can spill
//! its dirty words down the hierarchy.

use crate::addr::{LineAddr, WORDS_PER_LINE};
use crate::checkpoint::CheckpointStore;
use crate::Word;
use hic_sim::config::CacheGeometry;

/// Dirty-word bitmask: bit `i` set means word `i` of the line is dirty.
pub type DirtyMask = u16;

/// Mask with all words of a line dirty.
pub const FULL_DIRTY: DirtyMask = u16::MAX;

#[derive(Debug, Clone)]
struct Slot {
    addr: LineAddr,
    valid: bool,
    dirty: DirtyMask,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    data: [Word; WORDS_PER_LINE],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            addr: LineAddr(0),
            valid: false,
            dirty: 0,
            lru: 0,
            data: [0; WORDS_PER_LINE],
        }
    }
}

/// A line evicted to make room, carrying its dirty words (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    pub addr: LineAddr,
    pub dirty: DirtyMask,
    pub data: [Word; WORDS_PER_LINE],
}

impl EvictedLine {
    /// Number of dirty words carried.
    pub fn dirty_words(&self) -> u32 {
        self.dirty.count_ones()
    }
}

/// Immutable view of a resident line.
#[derive(Debug, Clone, Copy)]
pub struct LineView<'a> {
    pub addr: LineAddr,
    pub dirty: DirtyMask,
    pub data: &'a [Word; WORDS_PER_LINE],
}

/// Result of a lookup: hit with the line's dirty mask, or miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    Hit { dirty: DirtyMask },
    Miss,
}

impl LookupResult {
    pub fn is_hit(self) -> bool {
        matches!(self, LookupResult::Hit { .. })
    }
}

/// Set-associative write-back cache with LRU replacement and per-word
/// dirty bits.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    slots: Vec<Slot>,
    tick: u64,
    /// Number of valid lines resident.
    line_count_resident: usize,
    /// Number of valid lines with at least one dirty word. Hardware keeps
    /// this as a counter register so `WB ALL` / `INV ALL` can skip the
    /// tag traversal entirely when the cache is clean (flash-clear).
    dirty_line_count: usize,
    /// Bit per slot: the slot holds a valid line. Models the hardware
    /// valid-bit column read out as a vector, so ALL-flavor traversals
    /// visit only resident lines instead of sweeping every slot.
    valid_bits: Vec<u64>,
    /// Bit per slot: the slot holds a valid line with at least one dirty
    /// word (the OR-reduction of its per-word dirty bits). `WB ALL`
    /// walks exactly these.
    dirty_bits: Vec<u64>,
    /// Per-line parity protection, modeling the ECC-lite arrays of a
    /// near-threshold design (off by default; enabled by fault
    /// injection). When on, bit `i` holds the even parity of slot `i`'s
    /// data and is maintained on every legitimate write; a bit flip
    /// injected via [`Cache::corrupt_bit`] bypasses the update, so
    /// [`Cache::parity_ok`] detects it on the next read.
    parity_enabled: bool,
    parity_bits: Vec<u64>,
    /// Copy-on-write epoch checkpoints for dirty lines (rollback
    /// recovery; see [`crate::checkpoint`]). Off by default — every
    /// maintenance hook is behind the option, so recovery-disabled runs
    /// pay one branch. Owned by the cache itself so no mutation path
    /// can bypass the journal.
    ckpt: Option<Box<CheckpointStore>>,
}

/// Even parity of a line's data: XOR-reduction of all its bits.
#[inline]
fn line_parity(data: &[Word; WORDS_PER_LINE]) -> bool {
    data.iter().fold(0u32, |p, w| p ^ w.count_ones()) & 1 == 1
}

/// Iterate the indices of set bits in a slot bitmap, ascending.
fn for_each_set_bit(bits: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in bits.iter().enumerate() {
        let mut rest = word;
        while rest != 0 {
            let b = rest.trailing_zeros() as usize;
            f(w * 64 + b);
            rest &= rest - 1;
        }
    }
}

impl Cache {
    /// Build a cache from a geometry. Panics if the geometry's line size
    /// does not match the global line (`MachineConfig::validate` rejects
    /// such geometries before a machine is ever assembled; this assert is
    /// the defense in depth for direct `Cache` construction).
    pub fn new(geom: CacheGeometry) -> Cache {
        assert_eq!(
            geom.line_bytes,
            hic_sim::config::line_bytes(),
            "cache geometry line size must match the global line size"
        );
        let sets = geom.num_sets();
        let ways = geom.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let words = (sets * ways).div_ceil(64);
        Cache {
            sets,
            ways,
            slots: vec![Slot::empty(); sets * ways],
            tick: 0,
            line_count_resident: 0,
            dirty_line_count: 0,
            valid_bits: vec![0; words],
            dirty_bits: vec![0; words],
            parity_enabled: false,
            parity_bits: vec![0; words],
            ckpt: None,
        }
    }

    /// Turn on copy-on-write epoch checkpointing of dirty lines. Like
    /// [`Cache::enable_parity`] it can be enabled mid-flight: every
    /// already-dirty resident line is captured at its *current* image
    /// (the best recovery point available once its epoch is underway).
    pub fn enable_checkpoints(&mut self) {
        let mut ck = Box::new(CheckpointStore::new());
        for s in self.slots.iter().filter(|s| s.valid && s.dirty != 0) {
            ck.rebase(s.addr, &s.data, s.dirty);
        }
        self.ckpt = Some(ck);
    }

    /// Whether dirty-line checkpointing is on.
    pub fn checkpoints_enabled(&self) -> bool {
        self.ckpt.is_some()
    }

    /// Epoch boundary (MEB/IEB marker): collapse every line's store
    /// journal into its checkpoint base, so no rollback replays past
    /// this point. No-op when checkpointing is off.
    pub fn epoch_mark(&mut self) {
        if let Some(ck) = self.ckpt.as_mut() {
            ck.epoch_mark();
        }
    }

    /// Repair a (presumed corrupted) resident line from its checkpoint:
    /// rewrite the line's data with the checkpoint reconstruction and
    /// restore parity consistency. Returns the number of journaled
    /// stores the restore replayed, or `None` when the line is resident
    /// but untracked / checkpointing is off (the caller must fall back
    /// to the fatal path).
    pub fn rollback_line(&mut self, addr: LineAddr) -> Option<u64> {
        let i = self.find(addr)?;
        let (image, stores) = self.ckpt.as_ref()?.rollback_image(addr)?;
        self.slots[i].data = image;
        if self.parity_enabled {
            let p = line_parity(&self.slots[i].data);
            self.set_parity_bit(i, p);
        }
        Some(stores)
    }

    /// Total words captured into checkpoint bases (0 when checkpointing
    /// is off). Charged to `ResilienceStats::checkpoint_words`.
    pub fn checkpoint_words(&self) -> u64 {
        self.ckpt.as_ref().map_or(0, |ck| ck.captured_words())
    }

    /// Turn on per-line parity tracking. Recomputes parity for every
    /// resident line so it can be enabled mid-flight; costs nothing when
    /// never called (every maintenance site is behind the flag).
    pub fn enable_parity(&mut self) {
        self.parity_enabled = true;
        self.parity_bits.fill(0);
        for i in 0..self.slots.len() {
            if self.slots[i].valid && line_parity(&self.slots[i].data) {
                self.parity_bits[i / 64] |= 1 << (i % 64);
            }
        }
    }

    #[inline]
    fn set_parity_bit(&mut self, i: usize, on: bool) {
        if on {
            self.parity_bits[i / 64] |= 1 << (i % 64);
        } else {
            self.parity_bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Flip the stored parity of slot `i` when a word changes from `old`
    /// to `new` (parity of a line is linear in its bits).
    #[inline]
    fn update_parity_for_write(&mut self, i: usize, old: Word, new: Word) {
        if self.parity_enabled && (old ^ new).count_ones() & 1 == 1 {
            self.parity_bits[i / 64] ^= 1 << (i % 64);
        }
    }

    /// Does the stored parity of a resident line match its data? Always
    /// `true` when parity is disabled or the line is not resident.
    pub fn parity_ok(&self, addr: LineAddr) -> bool {
        if !self.parity_enabled {
            return true;
        }
        match self.find(addr) {
            Some(i) => {
                let stored = self.parity_bits[i / 64] & (1 << (i % 64)) != 0;
                stored == line_parity(&self.slots[i].data)
            }
            None => true,
        }
    }

    /// Fault injection: flip one bit of a resident line's data *without*
    /// updating its parity, modeling a transient upset in the data array.
    /// Returns `true` if the line was resident and the bit was flipped.
    pub fn corrupt_bit(&mut self, addr: LineAddr, word: usize, bit: u32) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.slots[i].data[word % WORDS_PER_LINE] ^= 1 << (bit % Word::BITS);
                true
            }
            None => false,
        }
    }

    #[inline]
    fn set_valid_bit(&mut self, i: usize, on: bool) {
        if on {
            self.valid_bits[i / 64] |= 1 << (i % 64);
        } else {
            self.valid_bits[i / 64] &= !(1 << (i % 64));
        }
    }

    #[inline]
    fn set_dirty_bit(&mut self, i: usize, on: bool) {
        if on {
            self.dirty_bits[i / 64] |= 1 << (i % 64);
        } else {
            self.dirty_bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.line_count_resident
    }

    /// Number of resident lines with at least one dirty word (tracked in
    /// a hardware counter; lets ALL-flavor operations flash-complete when
    /// the cache is clean).
    pub fn dirty_lines_resident(&self) -> usize {
        self.dirty_line_count
    }

    #[inline]
    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn set_slots(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, addr: LineAddr) -> Option<usize> {
        let set = self.set_of(addr);
        self.set_slots(set)
            .find(|&i| self.slots[i].valid && self.slots[i].addr == addr)
    }

    /// The line ID the MEB stores: position of the line within the cache
    /// (set index * ways + way), `line_id_bits` wide (paper §IV-B1).
    pub fn line_id(&self, addr: LineAddr) -> Option<usize> {
        self.find(addr)
    }

    /// Line address currently resident at a given line ID, if valid.
    /// Used when draining the MEB: an ID whose slot was re-filled by a
    /// different (never-written) line is a stale MEB entry.
    pub fn line_at_id(&self, id: usize) -> Option<LineView<'_>> {
        let s = self.slots.get(id)?;
        if s.valid {
            Some(LineView {
                addr: s.addr,
                dirty: s.dirty,
                data: &s.data,
            })
        } else {
            None
        }
    }

    /// Probe without disturbing LRU state.
    pub fn probe(&self, addr: LineAddr) -> LookupResult {
        match self.find(addr) {
            Some(i) => LookupResult::Hit {
                dirty: self.slots[i].dirty,
            },
            None => LookupResult::Miss,
        }
    }

    /// Immutable view of a resident line.
    pub fn view(&self, addr: LineAddr) -> Option<LineView<'_>> {
        self.find(addr).map(|i| LineView {
            addr: self.slots[i].addr,
            dirty: self.slots[i].dirty,
            data: &self.slots[i].data,
        })
    }

    /// Read one word if the line is resident; bumps LRU.
    pub fn read_word(&mut self, addr: LineAddr, word: usize) -> Option<Word> {
        let i = self.find(addr)?;
        self.tick += 1;
        self.slots[i].lru = self.tick;
        Some(self.slots[i].data[word])
    }

    /// Is a specific word of a resident line dirty?
    pub fn word_dirty(&self, addr: LineAddr, word: usize) -> bool {
        match self.find(addr) {
            Some(i) => self.slots[i].dirty & (1 << word) != 0,
            None => false,
        }
    }

    /// Write one word if the line is resident; sets its dirty bit and bumps
    /// LRU. Returns `true` on hit. The second element reports whether the
    /// word was clean before (the MEB inserts on clean->dirty transitions).
    pub fn write_word(&mut self, addr: LineAddr, word: usize, value: Word) -> Option<bool> {
        let i = self.find(addr)?;
        self.tick += 1;
        if let Some(ck) = self.ckpt.as_mut() {
            // Journal the store *before* it lands: the first store to an
            // untracked line captures the pre-store image as its base.
            ck.on_store(addr, word, value, &self.slots[i].data);
        }
        let s = &mut self.slots[i];
        s.lru = self.tick;
        if s.dirty == 0 {
            self.dirty_line_count += 1;
            self.dirty_bits[i / 64] |= 1 << (i % 64);
        }
        let s = &mut self.slots[i];
        let was_clean = s.dirty & (1 << word) == 0;
        let old = s.data[word];
        s.data[word] = value;
        s.dirty |= 1 << word;
        self.update_parity_for_write(i, old, value);
        Some(was_clean)
    }

    /// Install a line (e.g. on a miss fill). The line arrives clean unless
    /// `dirty` says otherwise. Returns the evicted victim, if the set was
    /// full and a valid line had to leave.
    pub fn fill(
        &mut self,
        addr: LineAddr,
        data: [Word; WORDS_PER_LINE],
        dirty: DirtyMask,
    ) -> Option<EvictedLine> {
        if let Some(i) = self.find(addr) {
            // Refill of a resident line: overwrite data, merge dirty mask.
            self.tick += 1;
            let s = &mut self.slots[i];
            s.lru = self.tick;
            s.data = data;
            if self.parity_enabled {
                let p = line_parity(&self.slots[i].data);
                self.set_parity_bit(i, p);
            }
            if self.slots[i].dirty == 0 && dirty != 0 {
                self.dirty_line_count += 1;
                self.dirty_bits[i / 64] |= 1 << (i % 64);
            }
            self.slots[i].dirty |= dirty;
            let now_dirty = self.slots[i].dirty;
            if let Some(ck) = self.ckpt.as_mut() {
                // Wholesale data replacement: the old journal no longer
                // reconstructs this line. Re-capture (still dirty) or
                // drop (clean).
                ck.rebase(addr, &data, now_dirty);
            }
            return None;
        }
        let set = self.set_of(addr);
        // Choose an invalid slot, else the LRU victim.
        let mut victim_idx = set * self.ways;
        let mut best_lru = u64::MAX;
        for i in self.set_slots(set) {
            if !self.slots[i].valid {
                victim_idx = i;
                break;
            }
            if self.slots[i].lru < best_lru {
                best_lru = self.slots[i].lru;
                victim_idx = i;
            }
        }
        let evicted = if self.slots[victim_idx].valid {
            self.line_count_resident -= 1;
            if self.slots[victim_idx].dirty != 0 {
                self.dirty_line_count -= 1;
            }
            let v = &self.slots[victim_idx];
            Some(EvictedLine {
                addr: v.addr,
                dirty: v.dirty,
                data: v.data,
            })
        } else {
            None
        };
        if let (Some(ev), Some(ck)) = (&evicted, self.ckpt.as_mut()) {
            ck.prune(ev.addr);
        }
        self.tick += 1;
        if dirty != 0 {
            self.dirty_line_count += 1;
        }
        self.slots[victim_idx] = Slot {
            addr,
            valid: true,
            dirty,
            lru: self.tick,
            data,
        };
        self.line_count_resident += 1;
        self.set_valid_bit(victim_idx, true);
        self.set_dirty_bit(victim_idx, dirty != 0);
        if self.parity_enabled {
            let p = line_parity(&self.slots[victim_idx].data);
            self.set_parity_bit(victim_idx, p);
        }
        if dirty != 0 {
            if let Some(ck) = self.ckpt.as_mut() {
                ck.rebase(addr, &data, dirty);
            }
        }
        evicted
    }

    /// Merge dirty words into a resident line (a writeback arriving from a
    /// cache above). Only the words selected by `mask` are written; they
    /// become dirty here. Returns `false` if the line is not resident.
    pub fn merge_words(
        &mut self,
        addr: LineAddr,
        data: &[Word; WORDS_PER_LINE],
        mask: DirtyMask,
    ) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.tick += 1;
                let mut parity_delta = 0u32;
                let s = &mut self.slots[i];
                s.lru = self.tick;
                for (w, incoming) in data.iter().enumerate() {
                    if mask & (1 << w) != 0 {
                        parity_delta ^= s.data[w] ^ *incoming;
                        s.data[w] = *incoming;
                    }
                }
                if self.parity_enabled && parity_delta.count_ones() & 1 == 1 {
                    self.parity_bits[i / 64] ^= 1 << (i % 64);
                }
                if self.slots[i].dirty == 0 && mask != 0 {
                    self.dirty_line_count += 1;
                    self.dirty_bits[i / 64] |= 1 << (i % 64);
                }
                self.slots[i].dirty |= mask;
                let (d, now_dirty) = (self.slots[i].data, self.slots[i].dirty);
                if let Some(ck) = self.ckpt.as_mut() {
                    // An incoming writeback replaced words out-of-band of
                    // the store journal: re-capture at the merged image.
                    ck.rebase(addr, &d, now_dirty);
                }
                true
            }
            None => false,
        }
    }

    /// Clear the dirty bits of a resident line (it was just written back
    /// and is now "clean valid", §III-B). Returns the mask that was dirty.
    pub fn clean_line(&mut self, addr: LineAddr) -> DirtyMask {
        match self.find(addr) {
            Some(i) => {
                let was = std::mem::take(&mut self.slots[i].dirty);
                if was != 0 {
                    self.dirty_line_count -= 1;
                    self.set_dirty_bit(i, false);
                    if let Some(ck) = self.ckpt.as_mut() {
                        ck.prune(addr);
                    }
                }
                was
            }
            None => 0,
        }
    }

    /// Clear only the selected dirty bits of a resident line. A partial
    /// (word- or range-granularity) writeback must not mark words it did
    /// not transfer as clean — their updates would be silently lost.
    pub fn clean_words(&mut self, addr: LineAddr, mask: DirtyMask) {
        if let Some(i) = self.find(addr) {
            let was = self.slots[i].dirty;
            self.slots[i].dirty &= !mask;
            if was != 0 && self.slots[i].dirty == 0 {
                self.dirty_line_count -= 1;
                self.set_dirty_bit(i, false);
                if let Some(ck) = self.ckpt.as_mut() {
                    ck.prune(addr);
                }
            }
        }
    }

    /// Invalidate a resident line, returning its content so the caller can
    /// first write back dirty words (INV must not lose updates, §III-B).
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<EvictedLine> {
        let i = self.find(addr)?;
        if let Some(ck) = self.ckpt.as_mut() {
            ck.prune(addr);
        }
        self.slots[i].valid = false;
        self.line_count_resident -= 1;
        if self.slots[i].dirty != 0 {
            self.dirty_line_count -= 1;
        }
        self.set_valid_bit(i, false);
        self.set_dirty_bit(i, false);
        let s = &self.slots[i];
        Some(EvictedLine {
            addr: s.addr,
            dirty: s.dirty,
            data: s.data,
        })
    }

    /// Iterate over all valid lines (for WB ALL / INV ALL traversals).
    ///
    /// Deliberately a raw slot sweep rather than a bitmap walk: this is
    /// the naive reference the property tests compare the valid/dirty
    /// slot bitmaps against.
    pub fn valid_lines(&self) -> impl Iterator<Item = LineView<'_>> {
        self.slots.iter().filter(|s| s.valid).map(|s| LineView {
            addr: s.addr,
            dirty: s.dirty,
            data: &s.data,
        })
    }

    /// Visit every valid line with at least one dirty word in ascending
    /// slot order (same order as [`Cache::valid_lines`]), walking the
    /// dirty-slot bitmap instead of sweeping all slots.
    pub fn for_each_dirty_line(&self, mut f: impl FnMut(LineView<'_>)) {
        for_each_set_bit(&self.dirty_bits, |i| {
            let s = &self.slots[i];
            debug_assert!(s.valid && s.dirty != 0, "stale dirty bit for slot {i}");
            f(LineView {
                addr: s.addr,
                dirty: s.dirty,
                data: &s.data,
            });
        });
    }

    /// Append the addresses of all valid lines with at least one dirty
    /// word to `out` (ascending slot order, same as [`Cache::valid_lines`]).
    /// Walks the dirty-slot bitmap, so a mostly-clean cache costs
    /// O(capacity/64), not O(capacity), and the caller reuses `out`
    /// across instructions instead of allocating.
    pub fn dirty_line_addrs_into(&self, out: &mut Vec<LineAddr>) {
        for_each_set_bit(&self.dirty_bits, |i| {
            let s = &self.slots[i];
            debug_assert!(s.valid && s.dirty != 0, "stale dirty bit for slot {i}");
            out.push(s.addr);
        });
    }

    /// Append the addresses of all valid lines to `out` (ascending slot
    /// order).
    pub fn valid_line_addrs_into(&self, out: &mut Vec<LineAddr>) {
        for_each_set_bit(&self.valid_bits, |i| {
            let s = &self.slots[i];
            debug_assert!(s.valid, "stale valid bit for slot {i}");
            out.push(s.addr);
        });
    }

    /// Addresses of all valid lines with at least one dirty word.
    pub fn dirty_line_addrs(&self) -> Vec<LineAddr> {
        let mut out = Vec::with_capacity(self.dirty_line_count);
        self.dirty_line_addrs_into(&mut out);
        out
    }

    /// Addresses of all valid lines.
    pub fn valid_line_addrs(&self) -> Vec<LineAddr> {
        let mut out = Vec::with_capacity(self.line_count_resident);
        self.valid_line_addrs_into(&mut out);
        out
    }

    /// Drop every line (power-on reset; used between experiment runs).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = Slot::empty();
        }
        self.tick = 0;
        self.line_count_resident = 0;
        self.dirty_line_count = 0;
        self.valid_bits.fill(0);
        self.dirty_bits.fill(0);
        self.parity_bits.fill(0);
        if let Some(ck) = self.ckpt.as_mut() {
            **ck = CheckpointStore::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheGeometry {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    fn line_data(seed: Word) -> [Word; WORDS_PER_LINE] {
        std::array::from_fn(|i| seed.wrapping_add(i as Word))
    }

    #[test]
    fn fill_then_read() {
        let mut c = small_cache();
        assert!(c.fill(LineAddr(10), line_data(100), 0).is_none());
        assert_eq!(c.read_word(LineAddr(10), 3), Some(103));
        assert!(c.probe(LineAddr(10)).is_hit());
        assert_eq!(c.probe(LineAddr(11)), LookupResult::Miss);
    }

    #[test]
    fn write_sets_per_word_dirty_bits() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(0), 0);
        assert_eq!(c.write_word(LineAddr(1), 5, 99), Some(true)); // was clean
        assert_eq!(c.write_word(LineAddr(1), 5, 98), Some(false)); // already dirty
        assert!(c.word_dirty(LineAddr(1), 5));
        assert!(!c.word_dirty(LineAddr(1), 4));
        match c.probe(LineAddr(1)) {
            LookupResult::Hit { dirty } => assert_eq!(dirty, 1 << 5),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Ways = 2.
        c.fill(LineAddr(0), line_data(0), 0);
        c.fill(LineAddr(4), line_data(4), 0);
        // Touch line 0 so line 4 is LRU.
        c.read_word(LineAddr(0), 0);
        let ev = c.fill(LineAddr(8), line_data(8), 0).expect("must evict");
        assert_eq!(ev.addr, LineAddr(4));
        assert!(c.probe(LineAddr(0)).is_hit());
        assert!(c.probe(LineAddr(8)).is_hit());
        assert!(!c.probe(LineAddr(4)).is_hit());
    }

    #[test]
    fn eviction_carries_dirty_words() {
        let mut c = small_cache();
        c.fill(LineAddr(0), line_data(0), 0);
        c.write_word(LineAddr(0), 2, 777).unwrap();
        c.fill(LineAddr(4), line_data(4), 0);
        let ev = c.fill(LineAddr(8), line_data(8), 0).expect("evicts line 0");
        assert_eq!(ev.addr, LineAddr(0));
        assert_eq!(ev.dirty, 1 << 2);
        assert_eq!(ev.data[2], 777);
        assert_eq!(ev.dirty_words(), 1);
    }

    #[test]
    fn merge_words_applies_only_masked_words() {
        let mut c = small_cache();
        c.fill(LineAddr(3), line_data(0), 0);
        let incoming = line_data(1000);
        assert!(c.merge_words(LineAddr(3), &incoming, 0b101));
        assert_eq!(c.read_word(LineAddr(3), 0), Some(1000));
        assert_eq!(c.read_word(LineAddr(3), 1), Some(1)); // untouched
        assert_eq!(c.read_word(LineAddr(3), 2), Some(1002));
        match c.probe(LineAddr(3)) {
            LookupResult::Hit { dirty } => assert_eq!(dirty, 0b101),
            _ => panic!(),
        }
        assert!(!c.merge_words(LineAddr(99), &incoming, 1));
    }

    #[test]
    fn clean_line_clears_and_reports_dirty_mask() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(0), 0);
        c.write_word(LineAddr(1), 0, 5).unwrap();
        c.write_word(LineAddr(1), 7, 5).unwrap();
        assert_eq!(c.clean_line(LineAddr(1)), (1 << 0) | (1 << 7));
        match c.probe(LineAddr(1)) {
            LookupResult::Hit { dirty } => assert_eq!(dirty, 0),
            _ => panic!(),
        }
        assert_eq!(c.clean_line(LineAddr(222)), 0);
    }

    #[test]
    fn invalidate_returns_content() {
        let mut c = small_cache();
        c.fill(LineAddr(6), line_data(60), 0);
        c.write_word(LineAddr(6), 1, 1).unwrap();
        let inv = c.invalidate(LineAddr(6)).unwrap();
        assert_eq!(inv.addr, LineAddr(6));
        assert_eq!(inv.dirty, 1 << 1);
        assert!(!c.probe(LineAddr(6)).is_hit());
        assert!(c.invalidate(LineAddr(6)).is_none());
    }

    #[test]
    fn refill_of_resident_line_merges_dirty() {
        let mut c = small_cache();
        c.fill(LineAddr(2), line_data(0), 0);
        c.write_word(LineAddr(2), 3, 42).unwrap();
        // Refill (e.g. prefetch) must not drop the dirty bit.
        c.fill(LineAddr(2), line_data(500), 0);
        match c.probe(LineAddr(2)) {
            LookupResult::Hit { dirty } => assert_eq!(dirty, 1 << 3),
            _ => panic!(),
        }
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn traversal_iterators() {
        let mut c = small_cache();
        c.fill(LineAddr(0), line_data(0), 0);
        c.fill(LineAddr(1), line_data(0), 0);
        c.write_word(LineAddr(1), 0, 9).unwrap();
        assert_eq!(c.valid_line_addrs().len(), 2);
        assert_eq!(c.dirty_line_addrs(), vec![LineAddr(1)]);
        assert_eq!(c.valid_lines().count(), 2);
    }

    #[test]
    fn line_id_is_stable_while_resident() {
        let mut c = small_cache();
        c.fill(LineAddr(0), line_data(0), 0);
        let id = c.line_id(LineAddr(0)).unwrap();
        c.read_word(LineAddr(0), 0);
        assert_eq!(c.line_id(LineAddr(0)), Some(id));
        let v = c.line_at_id(id).unwrap();
        assert_eq!(v.addr, LineAddr(0));
    }

    #[test]
    fn stale_meb_id_points_to_different_line_after_replacement() {
        // Models paper §IV-B1: MEB entry goes stale when its line is
        // evicted and the slot refilled by a never-written line.
        let mut c = small_cache();
        c.fill(LineAddr(0), line_data(0), 0);
        c.write_word(LineAddr(0), 0, 1).unwrap();
        let id = c.line_id(LineAddr(0)).unwrap();
        c.fill(LineAddr(4), line_data(0), 0);
        // Evict line 0 (LRU after touching line 4), refill slot with line 8.
        c.fill(LineAddr(8), line_data(0), 0);
        let now = c.line_at_id(id).unwrap();
        // The slot holds a different, clean line: drain must skip it.
        assert_ne!(now.addr, LineAddr(0));
        assert_eq!(now.dirty, 0);
    }

    #[test]
    fn reset_empties_cache() {
        let mut c = small_cache();
        c.fill(LineAddr(0), line_data(0), FULL_DIRTY);
        c.reset();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.probe(LineAddr(0)).is_hit());
    }

    #[test]
    fn parity_tracks_legitimate_writes() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(7), 0);
        c.enable_parity();
        assert!(c.parity_ok(LineAddr(1)));
        // Every legitimate mutation keeps parity consistent.
        c.write_word(LineAddr(1), 3, 0xDEAD_BEEF).unwrap();
        assert!(c.parity_ok(LineAddr(1)));
        assert!(c.merge_words(LineAddr(1), &line_data(9000), 0b1101));
        assert!(c.parity_ok(LineAddr(1)));
        c.fill(LineAddr(1), line_data(1234), 0);
        assert!(c.parity_ok(LineAddr(1)));
        c.fill(LineAddr(2), line_data(55), FULL_DIRTY);
        assert!(c.parity_ok(LineAddr(2)));
        // Non-resident and parity-disabled caches always report ok.
        assert!(c.parity_ok(LineAddr(99)));
        assert!(small_cache().parity_ok(LineAddr(1)));
    }

    #[test]
    fn corrupt_bit_is_detected_by_parity() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(7), 0);
        c.enable_parity();
        assert!(c.corrupt_bit(LineAddr(1), 5, 17));
        assert!(!c.parity_ok(LineAddr(1)));
        // A refetch (refill) restores consistency.
        c.fill(LineAddr(1), line_data(7), 0);
        assert!(c.parity_ok(LineAddr(1)));
        assert_eq!(c.read_word(LineAddr(1), 5), Some(12));
        // Corrupting a missing line is a no-op.
        assert!(!c.corrupt_bit(LineAddr(42), 0, 0));
    }

    #[test]
    fn rollback_restores_a_corrupted_dirty_line() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(7), 0);
        c.enable_parity();
        c.enable_checkpoints();
        c.write_word(LineAddr(1), 3, 0xAAAA).unwrap();
        c.write_word(LineAddr(1), 3, 0xBBBB).unwrap();
        c.write_word(LineAddr(1), 9, 0x1234).unwrap();
        assert!(c.corrupt_bit(LineAddr(1), 4, 11));
        assert!(!c.parity_ok(LineAddr(1)));
        let stores = c.rollback_line(LineAddr(1)).expect("line is tracked");
        assert_eq!(stores, 3);
        assert!(c.parity_ok(LineAddr(1)), "rollback restores parity");
        assert_eq!(c.read_word(LineAddr(1), 3), Some(0xBBBB));
        assert_eq!(c.read_word(LineAddr(1), 9), Some(0x1234));
        assert_eq!(c.read_word(LineAddr(1), 4), Some(11)); // pre-corruption
        assert_eq!(c.checkpoint_words(), WORDS_PER_LINE as u64);
    }

    #[test]
    fn epoch_mark_bounds_the_replay_window() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(0), 0);
        c.enable_checkpoints();
        c.write_word(LineAddr(1), 0, 1).unwrap();
        c.epoch_mark();
        assert_eq!(c.rollback_line(LineAddr(1)), Some(0));
        c.write_word(LineAddr(1), 1, 2).unwrap();
        assert_eq!(c.rollback_line(LineAddr(1)), Some(1));
        assert_eq!(c.read_word(LineAddr(1), 0), Some(1));
        assert_eq!(c.read_word(LineAddr(1), 1), Some(2));
    }

    #[test]
    fn clean_and_invalidate_drop_checkpoints() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(0), 0);
        c.fill(LineAddr(2), line_data(0), 0);
        c.enable_checkpoints();
        c.write_word(LineAddr(1), 0, 1).unwrap();
        c.write_word(LineAddr(2), 0, 1).unwrap();
        c.clean_line(LineAddr(1));
        assert_eq!(c.rollback_line(LineAddr(1)), None, "clean line untracked");
        c.invalidate(LineAddr(2));
        assert_eq!(c.rollback_line(LineAddr(2)), None);
        // Untouched caches report nothing and checkpointing stays off.
        assert!(!small_cache().checkpoints_enabled());
        assert_eq!(small_cache().rollback_line(LineAddr(1)), None);
    }

    #[test]
    fn checkpoints_survive_mid_flight_enable_and_refill() {
        let mut c = small_cache();
        c.fill(LineAddr(1), line_data(5), 0);
        c.write_word(LineAddr(1), 2, 99).unwrap();
        // Enabled with a dirty line already resident: captured as-is.
        c.enable_checkpoints();
        assert_eq!(c.rollback_line(LineAddr(1)), Some(0));
        assert_eq!(c.read_word(LineAddr(1), 2), Some(99));
        // A refill of a still-dirty line rebases its checkpoint.
        c.fill(LineAddr(1), line_data(500), 0);
        assert_eq!(c.rollback_line(LineAddr(1)), Some(0));
        assert_eq!(c.read_word(LineAddr(1), 2), Some(502));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        Cache::new(CacheGeometry {
            size_bytes: 3 * 64 * 2,
            ways: 2,
            line_bytes: 64,
        });
    }
}
