//! Byte addresses, word addresses, line addresses, and contiguous regions.
//!
//! The whole simulator uses a fixed word/line grain, matching paper
//! Table III ("64B lines") and §VII-A ("16 dirty bits per line"). The
//! canonical constants live in `hic-sim::config` — next to the
//! [`hic_sim::CacheGeometry`] they validate against — and are re-exported
//! here for the address math. Encoding the grain as constants (rather
//! than threading a runtime geometry through every address computation)
//! keeps the hot paths branch-free; `MachineConfig::validate` rejects any
//! cache geometry whose line size disagrees.

use serde::{Deserialize, Serialize};

pub use hic_sim::config::{WORDS_PER_LINE, WORD_BYTES};

/// Line size in bytes, derived from the word grain (no independent
/// line-size constant exists — `CacheGeometry::line_bytes` is validated
/// against this same product).
const LINE_BYTES: u64 = WORD_BYTES * WORDS_PER_LINE as u64;

/// A byte address in the single shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The word containing this address.
    #[inline]
    pub fn word(self) -> WordAddr {
        WordAddr(self.0 / WORD_BYTES)
    }

    /// Byte offset within the line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Add a byte offset.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

/// A word-granularity address (byte address divided by the word size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// The line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE as u64)
    }

    /// Index of this word within its line (0..16).
    #[inline]
    pub fn index_in_line(self) -> usize {
        (self.0 % WORDS_PER_LINE as u64) as usize
    }

    /// The byte address of this word.
    #[inline]
    pub fn byte_addr(self) -> Addr {
        Addr(self.0 * WORD_BYTES)
    }
}

/// A line-granularity address (byte address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first byte of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The first word of the line.
    #[inline]
    pub fn first_word(self) -> WordAddr {
        WordAddr(self.0 * WORDS_PER_LINE as u64)
    }

    /// The `i`-th word of the line.
    #[inline]
    pub fn word(self, i: usize) -> WordAddr {
        debug_assert!(i < WORDS_PER_LINE);
        WordAddr(self.0 * WORDS_PER_LINE as u64 + i as u64)
    }
}

/// A contiguous word-granularity address range, used by range-flavored WB
/// and INV instructions (`WB(start, len)`, §III-B) and by region
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    /// First word of the region.
    pub start: WordAddr,
    /// Number of words.
    pub words: u64,
}

impl Region {
    /// An empty region at address zero.
    pub fn empty() -> Region {
        Region {
            start: WordAddr(0),
            words: 0,
        }
    }

    /// Region covering `words` words starting at `start`.
    pub fn new(start: WordAddr, words: u64) -> Region {
        Region { start, words }
    }

    /// One word past the end.
    #[inline]
    pub fn end(self) -> WordAddr {
        WordAddr(self.start.0 + self.words)
    }

    /// Does the region contain this word?
    #[inline]
    pub fn contains(self, w: WordAddr) -> bool {
        w.0 >= self.start.0 && w.0 < self.end().0
    }

    /// The `i`-th word of the region (word-granularity array indexing:
    /// applications address array element `i` through this).
    #[inline]
    pub fn at(self, i: u64) -> WordAddr {
        debug_assert!(i < self.words, "region index {i} out of {}", self.words);
        WordAddr(self.start.0 + i)
    }

    /// Sub-region `[lo, hi)` in element indices.
    pub fn slice(self, lo: u64, hi: u64) -> Region {
        assert!(
            lo <= hi && hi <= self.words,
            "slice [{lo},{hi}) out of {}",
            self.words
        );
        Region {
            start: WordAddr(self.start.0 + lo),
            words: hi - lo,
        }
    }

    /// All lines that overlap this region, in ascending order. WB and INV
    /// internally operate at line granularity (§III-B), so the hardware
    /// expands a region to the lines it touches.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        let (first, last) = if self.words == 0 {
            (1, 0) // empty iterator
        } else {
            (self.start.line().0, WordAddr(self.end().0 - 1).line().0)
        };
        (first..=last).map(LineAddr)
    }

    /// Number of lines the region overlaps.
    pub fn num_lines(self) -> u64 {
        if self.words == 0 {
            0
        } else {
            WordAddr(self.end().0 - 1).line().0 - self.start.line().0 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_decomposition() {
        let a = Addr(0x1234);
        assert_eq!(a.line(), LineAddr(0x1234 / 64));
        assert_eq!(a.word(), WordAddr(0x1234 / 4));
        assert_eq!(a.line_offset(), 0x1234 % 64);
    }

    #[test]
    fn word_index_in_line() {
        let w = WordAddr(16 + 3); // line 1, word 3
        assert_eq!(w.line(), LineAddr(1));
        assert_eq!(w.index_in_line(), 3);
        assert_eq!(w.byte_addr(), Addr(76));
    }

    #[test]
    fn line_words_roundtrip() {
        let l = LineAddr(5);
        for i in 0..WORDS_PER_LINE {
            let w = l.word(i);
            assert_eq!(w.line(), l);
            assert_eq!(w.index_in_line(), i);
        }
    }

    #[test]
    fn region_lines_cover_exactly_overlapping_lines() {
        // Words 14..19 straddle lines 0 and 1.
        let r = Region::new(WordAddr(14), 5);
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines, vec![LineAddr(0), LineAddr(1)]);
        assert_eq!(r.num_lines(), 2);
    }

    #[test]
    fn empty_region_has_no_lines() {
        let r = Region::new(WordAddr(100), 0);
        assert_eq!(r.lines().count(), 0);
        assert_eq!(r.num_lines(), 0);
        assert!(!r.contains(WordAddr(100)));
    }

    #[test]
    fn region_slice_and_at() {
        let r = Region::new(WordAddr(32), 16);
        assert_eq!(r.at(0), WordAddr(32));
        assert_eq!(r.at(15), WordAddr(47));
        let s = r.slice(4, 8);
        assert_eq!(s.start, WordAddr(36));
        assert_eq!(s.words, 4);
        assert!(s.contains(WordAddr(39)));
        assert!(!s.contains(WordAddr(40)));
    }

    #[test]
    #[should_panic(expected = "slice")]
    fn region_slice_out_of_bounds_panics() {
        Region::new(WordAddr(0), 4).slice(2, 6);
    }

    #[test]
    fn single_line_region() {
        let r = Region::new(WordAddr(16), 16); // exactly line 1
        assert_eq!(r.lines().collect::<Vec<_>>(), vec![LineAddr(1)]);
    }
}
