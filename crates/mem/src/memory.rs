//! Flat backing memory: the bottom of the hierarchy.
//!
//! Stores real word values so the simulator is value-accurate end to end.
//! Lines are materialized lazily (untouched memory reads as zero).

use std::collections::HashMap;

use crate::addr::{LineAddr, WordAddr, WORDS_PER_LINE};
use crate::cache::DirtyMask;
use crate::Word;

/// Sparse, lazily-materialized word-addressable memory.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    lines: HashMap<u64, [Word; WORDS_PER_LINE]>,
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Read a whole line (zeros if never written).
    pub fn read_line(&self, addr: LineAddr) -> [Word; WORDS_PER_LINE] {
        self.lines
            .get(&addr.0)
            .copied()
            .unwrap_or([0; WORDS_PER_LINE])
    }

    /// Write a whole line.
    pub fn write_line(&mut self, addr: LineAddr, data: [Word; WORDS_PER_LINE]) {
        self.lines.insert(addr.0, data);
    }

    /// Merge only the masked words of `data` into the line (a dirty-word
    /// writeback landing in memory).
    pub fn merge_words(&mut self, addr: LineAddr, data: &[Word; WORDS_PER_LINE], mask: DirtyMask) {
        let line = self.lines.entry(addr.0).or_insert([0; WORDS_PER_LINE]);
        for w in 0..WORDS_PER_LINE {
            if mask & (1 << w) != 0 {
                line[w] = data[w];
            }
        }
    }

    /// Read one word.
    pub fn read_word(&self, w: WordAddr) -> Word {
        match self.lines.get(&w.line().0) {
            Some(line) => line[w.index_in_line()],
            None => 0,
        }
    }

    /// Write one word.
    pub fn write_word(&mut self, w: WordAddr, value: Word) {
        let line = self.lines.entry(w.line().0).or_insert([0; WORDS_PER_LINE]);
        line[w.index_in_line()] = value;
    }

    /// Number of materialized lines (for memory-footprint sanity checks).
    pub fn materialized_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_word(WordAddr(12345)), 0);
        assert_eq!(m.read_line(LineAddr(77)), [0; WORDS_PER_LINE]);
    }

    #[test]
    fn word_write_read_roundtrip() {
        let mut m = Memory::new();
        m.write_word(WordAddr(100), 42);
        assert_eq!(m.read_word(WordAddr(100)), 42);
        assert_eq!(m.read_word(WordAddr(101)), 0);
    }

    #[test]
    fn merge_words_touches_only_masked() {
        let mut m = Memory::new();
        let mut line = [0; WORDS_PER_LINE];
        for (i, w) in line.iter_mut().enumerate() {
            *w = i as Word;
        }
        m.write_line(LineAddr(5), line);
        let incoming = [1000; WORDS_PER_LINE];
        m.merge_words(LineAddr(5), &incoming, 0b11);
        let got = m.read_line(LineAddr(5));
        assert_eq!(got[0], 1000);
        assert_eq!(got[1], 1000);
        assert_eq!(got[2], 2);
    }

    #[test]
    fn merge_into_unmaterialized_line() {
        let mut m = Memory::new();
        let incoming = [7; WORDS_PER_LINE];
        m.merge_words(LineAddr(9), &incoming, 1 << 4);
        let got = m.read_line(LineAddr(9));
        assert_eq!(got[4], 7);
        assert_eq!(got[3], 0);
        assert_eq!(m.materialized_lines(), 1);
    }
}
