//! Flat backing memory: the bottom of the hierarchy.
//!
//! Stores real word values so the simulator is value-accurate end to end.
//! Lines are materialized lazily (untouched memory reads as zero).
//!
//! Storage is a two-level page table indexed by line address: the top
//! level is a `Vec` of optional pages, each page holding `PAGE_LINES`
//! contiguous lines plus an occupancy bitmap. The simulator's bump
//! allocator hands out small dense line addresses, so the top-level
//! vector stays short and every access is two array indexings — no
//! hashing on the hot load/store path.

use crate::addr::{LineAddr, WordAddr, WORDS_PER_LINE};
use crate::cache::DirtyMask;
use crate::Word;

/// log2 of lines per page: 256 lines = 16 KiB of simulated data per page.
const PAGE_SHIFT: u32 = 8;
const PAGE_LINES: usize = 1 << PAGE_SHIFT;

#[derive(Debug, Clone)]
struct Page {
    data: Box<[[Word; WORDS_PER_LINE]; PAGE_LINES]>,
    /// Bit per line: the line has been written at least once. Keeps
    /// `materialized_lines` exact (a page is allocated whole, but only
    /// touched lines count).
    present: [u64; PAGE_LINES / 64],
}

impl Page {
    fn new() -> Page {
        Page {
            data: Box::new([[0; WORDS_PER_LINE]; PAGE_LINES]),
            present: [0; PAGE_LINES / 64],
        }
    }
}

/// Sparse, lazily-materialized word-addressable memory.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: Vec<Option<Page>>,
    materialized: usize,
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn split(addr: LineAddr) -> (usize, usize) {
        (
            (addr.0 >> PAGE_SHIFT) as usize,
            (addr.0 & (PAGE_LINES as u64 - 1)) as usize,
        )
    }

    #[inline]
    fn line(&self, addr: LineAddr) -> Option<&[Word; WORDS_PER_LINE]> {
        let (p, l) = Self::split(addr);
        match self.pages.get(p) {
            Some(Some(page)) => Some(&page.data[l]),
            _ => None,
        }
    }

    /// The line's backing slot, materializing its page (and marking the
    /// line present) as needed.
    fn line_mut(&mut self, addr: LineAddr) -> &mut [Word; WORDS_PER_LINE] {
        let (p, l) = Self::split(addr);
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        let page = self.pages[p].get_or_insert_with(Page::new);
        let (w, b) = (l / 64, 1u64 << (l % 64));
        if page.present[w] & b == 0 {
            page.present[w] |= b;
            self.materialized += 1;
        }
        &mut page.data[l]
    }

    /// Read a whole line (zeros if never written).
    pub fn read_line(&self, addr: LineAddr) -> [Word; WORDS_PER_LINE] {
        match self.line(addr) {
            Some(line) => *line,
            None => [0; WORDS_PER_LINE],
        }
    }

    /// Write a whole line.
    pub fn write_line(&mut self, addr: LineAddr, data: [Word; WORDS_PER_LINE]) {
        *self.line_mut(addr) = data;
    }

    /// Merge only the masked words of `data` into the line (a dirty-word
    /// writeback landing in memory).
    pub fn merge_words(&mut self, addr: LineAddr, data: &[Word; WORDS_PER_LINE], mask: DirtyMask) {
        let line = self.line_mut(addr);
        for w in 0..WORDS_PER_LINE {
            if mask & (1 << w) != 0 {
                line[w] = data[w];
            }
        }
    }

    /// Read one word.
    pub fn read_word(&self, w: WordAddr) -> Word {
        match self.line(w.line()) {
            Some(line) => line[w.index_in_line()],
            None => 0,
        }
    }

    /// Write one word.
    pub fn write_word(&mut self, w: WordAddr, value: Word) {
        self.line_mut(w.line())[w.index_in_line()] = value;
    }

    /// Number of materialized lines (for memory-footprint sanity checks).
    pub fn materialized_lines(&self) -> usize {
        self.materialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_word(WordAddr(12345)), 0);
        assert_eq!(m.read_line(LineAddr(77)), [0; WORDS_PER_LINE]);
    }

    #[test]
    fn word_write_read_roundtrip() {
        let mut m = Memory::new();
        m.write_word(WordAddr(100), 42);
        assert_eq!(m.read_word(WordAddr(100)), 42);
        assert_eq!(m.read_word(WordAddr(101)), 0);
    }

    #[test]
    fn merge_words_touches_only_masked() {
        let mut m = Memory::new();
        let mut line = [0; WORDS_PER_LINE];
        for (i, w) in line.iter_mut().enumerate() {
            *w = i as Word;
        }
        m.write_line(LineAddr(5), line);
        let incoming = [1000; WORDS_PER_LINE];
        m.merge_words(LineAddr(5), &incoming, 0b11);
        let got = m.read_line(LineAddr(5));
        assert_eq!(got[0], 1000);
        assert_eq!(got[1], 1000);
        assert_eq!(got[2], 2);
    }

    #[test]
    fn merge_into_unmaterialized_line() {
        let mut m = Memory::new();
        let incoming = [7; WORDS_PER_LINE];
        m.merge_words(LineAddr(9), &incoming, 1 << 4);
        let got = m.read_line(LineAddr(9));
        assert_eq!(got[4], 7);
        assert_eq!(got[3], 0);
        assert_eq!(m.materialized_lines(), 1);
    }

    #[test]
    fn page_boundaries_are_transparent() {
        let mut m = Memory::new();
        // Last line of page 0, first of page 1, and one far away.
        for base in [255u64, 256, 256 * 40 + 3] {
            m.write_word(WordAddr(base * WORDS_PER_LINE as u64), base as Word);
        }
        for base in [255u64, 256, 256 * 40 + 3] {
            assert_eq!(
                m.read_word(WordAddr(base * WORDS_PER_LINE as u64)),
                base as Word
            );
        }
        assert_eq!(m.materialized_lines(), 3);
    }

    #[test]
    fn rewriting_a_line_counts_once() {
        let mut m = Memory::new();
        m.write_line(LineAddr(7), [1; WORDS_PER_LINE]);
        m.write_line(LineAddr(7), [2; WORDS_PER_LINE]);
        m.write_word(WordAddr(7 * WORDS_PER_LINE as u64), 3);
        assert_eq!(m.materialized_lines(), 1);
    }
}
