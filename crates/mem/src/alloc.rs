//! Bump allocator for simulated data structures.
//!
//! Applications allocate arrays in the single shared address space before
//! spawning threads. Allocations are line-aligned by default so that
//! distinct arrays never share a cache line (apps can opt into packed
//! allocation to *study* false sharing, which the paper calls out as a
//! traffic source in coherent machines, §VII-B).

use crate::addr::{Region, WordAddr, WORDS_PER_LINE};

/// Line-aligned bump allocator over the simulated address space.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    next_word: u64,
}

impl Default for BumpAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl BumpAllocator {
    /// Allocation starts at line 1 (line 0 is reserved so that address 0
    /// never aliases application data).
    pub fn new() -> BumpAllocator {
        BumpAllocator {
            next_word: WORDS_PER_LINE as u64,
        }
    }

    /// Allocate `words` words aligned to a line boundary.
    pub fn alloc(&mut self, words: u64) -> Region {
        self.alloc_aligned(words, WORDS_PER_LINE as u64)
    }

    /// Allocate `words` words with the given word alignment (must be a
    /// power of two).
    pub fn alloc_aligned(&mut self, words: u64, align_words: u64) -> Region {
        assert!(
            align_words.is_power_of_two(),
            "alignment must be a power of two"
        );
        let base = (self.next_word + align_words - 1) & !(align_words - 1);
        self.next_word = base + words;
        Region::new(WordAddr(base), words)
    }

    /// Allocate without alignment, directly after the previous allocation.
    /// Arrays allocated this way can share cache lines — useful for false-
    /// sharing experiments.
    pub fn alloc_packed(&mut self, words: u64) -> Region {
        let base = self.next_word;
        self.next_word = base + words;
        Region::new(WordAddr(base), words)
    }

    /// Total words allocated so far (high-water mark).
    pub fn allocated_words(&self) -> u64 {
        self.next_word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut a = BumpAllocator::new();
        let r1 = a.alloc(10);
        let r2 = a.alloc(20);
        assert_eq!(r1.start.0 % WORDS_PER_LINE as u64, 0);
        assert_eq!(r2.start.0 % WORDS_PER_LINE as u64, 0);
        assert!(r1.end().0 <= r2.start.0, "regions must not overlap");
        // Different lines entirely.
        assert!(r1.lines().all(|l1| r2.lines().all(|l2| l1 != l2)));
    }

    #[test]
    fn packed_allocations_can_share_a_line() {
        let mut a = BumpAllocator::new();
        let r1 = a.alloc_packed(3);
        let r2 = a.alloc_packed(3);
        assert_eq!(r2.start.0, r1.end().0);
        assert_eq!(r1.lines().last(), r2.lines().next());
    }

    #[test]
    fn line_zero_is_reserved() {
        let mut a = BumpAllocator::new();
        let r = a.alloc(1);
        assert!(r.start.0 >= WORDS_PER_LINE as u64);
    }

    #[test]
    fn custom_alignment() {
        let mut a = BumpAllocator::new();
        a.alloc_packed(5);
        let r = a.alloc_aligned(4, 64);
        assert_eq!(r.start.0 % 64, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        BumpAllocator::new().alloc_aligned(1, 3);
    }
}
