//! Copy-on-write epoch checkpoints for dirty L1 lines.
//!
//! In the paper's incoherent hierarchy a dirty L1 line is the *only*
//! copy of produced data until the epoch-boundary WB pushes it down, so
//! a detected corruption (parity mismatch) in a dirty line cannot be
//! repaired by refetch — the next level holds stale words. This module
//! gives the machine a software recovery point instead: the first store
//! to an untracked line captures the line's pre-store image (the
//! checkpoint "base"), and every subsequent store is journaled as a
//! word overlay plus a store count. The invariant maintained by
//! [`crate::Cache`]'s mutation hooks is
//!
//! > `base` with the journaled overlay applied == the line's current
//! > data array,
//!
//! so a corrupted line is repaired exactly by rewriting that
//! reconstruction ([`CheckpointStore::rollback_image`]) — the restore
//! models replaying the epoch's stores onto the checkpointed image, and
//! the journal's store count is the replay's exposure window for a
//! second upset.
//!
//! Cost model: clean epochs cost ~zero (no entry is ever created until
//! a store dirties a line — the existing per-line dirty bits gate every
//! hook), a dirtied line costs one line image (`WORDS_PER_LINE` words,
//! counted in [`CheckpointStore::captured_words`]) plus a fixed-size
//! overlay. The journal never grows: later stores to the same word
//! overwrite the overlay in place, only the store *count* advances.
//!
//! Epoch markers ([`CheckpointStore::epoch_mark`], driven by MEB/IEB
//! begin/end in the machine) collapse each journal into its base, so a
//! rollback never replays past the most recent epoch boundary. Lines
//! that turn clean (written back) or leave the cache (invalidate,
//! eviction) drop their entries — once the data is safely below L1,
//! refetch is the cheaper repair and the old invalidate path handles it.

use std::collections::HashMap;

use crate::addr::{LineAddr, WORDS_PER_LINE};
use crate::cache::DirtyMask;
use crate::Word;

#[derive(Debug, Clone)]
struct LineCkpt {
    /// Line image at capture / last epoch mark.
    base: [Word; WORDS_PER_LINE],
    /// Last journaled value per word (valid where `overlay_mask` is set).
    overlay: [Word; WORDS_PER_LINE],
    overlay_mask: DirtyMask,
    /// Stores journaled since capture / last epoch mark: the number of
    /// stores a rollback replays (its second-upset exposure window).
    stores: u64,
}

impl LineCkpt {
    fn capture(base: [Word; WORDS_PER_LINE]) -> LineCkpt {
        LineCkpt {
            base,
            overlay: [0; WORDS_PER_LINE],
            overlay_mask: 0,
            stores: 0,
        }
    }

    /// `base` with the overlay applied: the line's current data image.
    fn image(&self) -> [Word; WORDS_PER_LINE] {
        let mut img = self.base;
        for (w, word) in img.iter_mut().enumerate() {
            if self.overlay_mask & (1 << w) != 0 {
                *word = self.overlay[w];
            }
        }
        img
    }

    fn collapse(&mut self) {
        self.base = self.image();
        self.overlay_mask = 0;
        self.stores = 0;
    }
}

/// Copy-on-write checkpoint + store journal for the dirty lines of one
/// cache. Owned by [`crate::Cache`] (behind an `Option<Box<..>>` so
/// recovery-disabled runs pay nothing) and driven entirely by the
/// cache's own mutation methods — there is no call site to forget.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    lines: HashMap<LineAddr, LineCkpt>,
    captured_words: u64,
}

impl CheckpointStore {
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Journal one store. `pre` is the line's data array *before* the
    /// store lands; the first store to an untracked line captures it as
    /// the checkpoint base.
    pub fn on_store(
        &mut self,
        addr: LineAddr,
        word: usize,
        value: Word,
        pre: &[Word; WORDS_PER_LINE],
    ) {
        let e = self.lines.entry(addr).or_insert_with(|| {
            self.captured_words += WORDS_PER_LINE as u64;
            LineCkpt::capture(*pre)
        });
        e.overlay[word] = value;
        e.overlay_mask |= 1 << word;
        e.stores += 1;
    }

    /// The line's data array was replaced wholesale (refill, merge). A
    /// still-dirty line re-captures the new image as a fresh base; a
    /// clean one drops its entry.
    pub fn rebase(&mut self, addr: LineAddr, data: &[Word; WORDS_PER_LINE], dirty: DirtyMask) {
        if dirty == 0 {
            self.lines.remove(&addr);
        } else {
            self.captured_words += WORDS_PER_LINE as u64;
            self.lines.insert(addr, LineCkpt::capture(*data));
        }
    }

    /// The line turned clean or left the cache: the data is safely held
    /// below L1, so the checkpoint is no longer the only recovery path.
    pub fn prune(&mut self, addr: LineAddr) {
        self.lines.remove(&addr);
    }

    /// Epoch boundary: collapse every journal into its base so no
    /// rollback ever replays past this point.
    pub fn epoch_mark(&mut self) {
        for e in self.lines.values_mut() {
            e.collapse();
        }
    }

    /// Reconstruct a tracked line: `(current data image, stores to
    /// replay)`. `None` when the line is untracked (never stored to
    /// since its last clean/evict — its data is refetchable instead).
    pub fn rollback_image(&self, addr: LineAddr) -> Option<([Word; WORDS_PER_LINE], u64)> {
        self.lines.get(&addr).map(|e| (e.image(), e.stores))
    }

    /// Lines currently tracked (dirty lines with a live checkpoint).
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total words captured into checkpoint bases over the store's
    /// lifetime (the COW footprint charged to `ResilienceStats`).
    pub fn captured_words(&self) -> u64 {
        self.captured_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(seed: Word) -> [Word; WORDS_PER_LINE] {
        std::array::from_fn(|i| seed.wrapping_add(i as Word))
    }

    #[test]
    fn capture_on_first_store_and_overlay_reconstruction() {
        let mut ck = CheckpointStore::new();
        let pre = img(100);
        ck.on_store(LineAddr(1), 3, 777, &pre);
        ck.on_store(LineAddr(1), 3, 778, &img(999)); // pre ignored once tracked
        ck.on_store(LineAddr(1), 0, 5, &img(999));
        assert_eq!(ck.captured_words(), WORDS_PER_LINE as u64);
        let (image, stores) = ck.rollback_image(LineAddr(1)).unwrap();
        assert_eq!(stores, 3);
        assert_eq!(image[3], 778);
        assert_eq!(image[0], 5);
        assert_eq!(image[1], pre[1]);
        assert!(ck.rollback_image(LineAddr(2)).is_none());
    }

    #[test]
    fn epoch_mark_collapses_the_journal() {
        let mut ck = CheckpointStore::new();
        ck.on_store(LineAddr(7), 2, 42, &img(0));
        ck.epoch_mark();
        let (image, stores) = ck.rollback_image(LineAddr(7)).unwrap();
        assert_eq!(stores, 0, "no replay past an epoch boundary");
        assert_eq!(image[2], 42);
        ck.on_store(LineAddr(7), 4, 9, &img(0));
        let (image, stores) = ck.rollback_image(LineAddr(7)).unwrap();
        assert_eq!((image[2], image[4], stores), (42, 9, 1));
    }

    #[test]
    fn prune_and_rebase() {
        let mut ck = CheckpointStore::new();
        ck.on_store(LineAddr(3), 0, 1, &img(0));
        ck.prune(LineAddr(3));
        assert!(ck.rollback_image(LineAddr(3)).is_none());
        assert_eq!(ck.tracked_lines(), 0);

        ck.rebase(LineAddr(4), &img(50), 0b10);
        let (image, stores) = ck.rollback_image(LineAddr(4)).unwrap();
        assert_eq!((image, stores), (img(50), 0));
        ck.rebase(LineAddr(4), &img(60), 0); // turned clean: dropped
        assert!(ck.rollback_image(LineAddr(4)).is_none());
    }

    #[test]
    fn journal_is_constant_size_per_line() {
        let mut ck = CheckpointStore::new();
        for i in 0..10_000u32 {
            ck.on_store(LineAddr(9), (i as usize) % WORDS_PER_LINE, i, &img(0));
        }
        // One capture, ever; only the store count grew.
        assert_eq!(ck.captured_words(), WORDS_PER_LINE as u64);
        let (_, stores) = ck.rollback_image(LineAddr(9)).unwrap();
        assert_eq!(stores, 10_000);
    }
}
