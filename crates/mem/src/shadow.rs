//! Sparse per-word shadow metadata storage.
//!
//! The incoherence sanitizer (`hic-check`) keeps a record for every word
//! the simulated program has stored to. This mirrors `Memory`'s two-level
//! page-table layout — the bump allocator hands out small dense addresses,
//! so the top-level vector stays short and a lookup is two array
//! indexings, cheap enough to sit on the simulator's load/store path when
//! checking is enabled.
//!
//! Unlike `Memory`, the payload type is generic: the sanitizer stores its
//! own `WordMeta`, and `T::default()` doubles as the "no metadata yet"
//! sentinel (pages materialize whole, so a fresh slot must be
//! distinguishable from a written one by its contents).

use crate::addr::WordAddr;

/// log2 of words per page: 4096 words = 16 KiB of simulated data per page,
/// matching `Memory`'s page granularity (256 lines x 16 words).
const PAGE_SHIFT: u32 = 12;
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;

/// Sparse, lazily-materialized map from `WordAddr` to `T`.
#[derive(Debug, Clone)]
pub struct ShadowMap<T> {
    pages: Vec<Option<Box<[T]>>>,
    pages_materialized: usize,
}

impl<T> Default for ShadowMap<T> {
    fn default() -> Self {
        ShadowMap {
            pages: Vec::new(),
            pages_materialized: 0,
        }
    }
}

impl<T: Clone + Default> ShadowMap<T> {
    pub fn new() -> ShadowMap<T> {
        ShadowMap::default()
    }

    #[inline]
    fn split(w: WordAddr) -> (usize, usize) {
        (
            (w.0 >> PAGE_SHIFT) as usize,
            (w.0 & (PAGE_WORDS as u64 - 1)) as usize,
        )
    }

    /// Read-only lookup; `None` if the word's page was never materialized.
    /// A materialized page returns `T::default()` for untouched slots.
    #[inline]
    pub fn get(&self, w: WordAddr) -> Option<&T> {
        let (p, i) = Self::split(w);
        match self.pages.get(p) {
            Some(Some(page)) => Some(&page[i]),
            _ => None,
        }
    }

    /// Mutable lookup that does *not* materialize missing pages — used for
    /// bulk upgrade sweeps that only touch already-tracked words.
    #[inline]
    pub fn get_mut(&mut self, w: WordAddr) -> Option<&mut T> {
        let (p, i) = Self::split(w);
        match self.pages.get_mut(p) {
            Some(Some(page)) => Some(&mut page[i]),
            _ => None,
        }
    }

    /// The word's slot, materializing its page as needed.
    pub fn entry(&mut self, w: WordAddr) -> &mut T {
        let (p, i) = Self::split(w);
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        if self.pages[p].is_none() {
            self.pages[p] = Some(vec![T::default(); PAGE_WORDS].into_boxed_slice());
            self.pages_materialized += 1;
        }
        &mut self.pages[p].as_deref_mut().unwrap()[i]
    }

    /// Number of materialized pages (each `PAGE_WORDS` words).
    pub fn pages_materialized(&self) -> usize {
        self.pages_materialized
    }

    /// Approximate host-side bytes held by materialized pages.
    pub fn shadow_bytes(&self) -> usize {
        self.pages_materialized() * PAGE_WORDS * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_before_entry_is_none() {
        let m: ShadowMap<u32> = ShadowMap::new();
        assert!(m.get(WordAddr(17)).is_none());
        assert_eq!(m.pages_materialized(), 0);
    }

    #[test]
    fn entry_materializes_and_persists() {
        let mut m: ShadowMap<u32> = ShadowMap::new();
        *m.entry(WordAddr(17)) = 42;
        assert_eq!(m.get(WordAddr(17)), Some(&42));
        // Same page, untouched slot: default value, not None.
        assert_eq!(m.get(WordAddr(18)), Some(&0));
        assert_eq!(m.pages_materialized(), 1);
    }

    #[test]
    fn get_mut_does_not_materialize() {
        let mut m: ShadowMap<u32> = ShadowMap::new();
        assert!(m.get_mut(WordAddr(99_999)).is_none());
        assert_eq!(m.pages_materialized(), 0);
        *m.entry(WordAddr(99_999)) = 7;
        *m.get_mut(WordAddr(99_999)).unwrap() += 1;
        assert_eq!(m.get(WordAddr(99_999)), Some(&8));
    }

    #[test]
    fn distant_pages_are_independent() {
        let mut m: ShadowMap<u8> = ShadowMap::new();
        *m.entry(WordAddr(0)) = 1;
        *m.entry(WordAddr((PAGE_WORDS * 5) as u64)) = 2;
        assert_eq!(m.pages_materialized(), 2);
        assert!(m.get(WordAddr((PAGE_WORDS * 3) as u64)).is_none());
        assert_eq!(m.shadow_bytes(), 2 * PAGE_WORDS);
    }
}
