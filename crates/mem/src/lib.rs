//! Memory-system substrate: addresses, cache lines with per-word dirty
//! bits, set-associative caches, the flat backing memory, and a bump
//! allocator for simulated data structures.
//!
//! The caches here are *policy-free*: they store real word values and
//! valid/dirty state but do not decide when to write back or invalidate.
//! The incoherent management engine (`hic-core`) and the MESI directory
//! (`hic-coherence`) drive them.

pub mod addr;
pub mod alloc;
pub mod cache;
pub mod checkpoint;
pub mod memory;
pub mod shadow;

pub use addr::{Addr, LineAddr, Region, WordAddr};
pub use alloc::BumpAllocator;
pub use cache::{Cache, EvictedLine, LineView, LookupResult};
pub use checkpoint::CheckpointStore;
pub use memory::Memory;
pub use shadow::ShadowMap;

/// Machine word as stored in caches and memory. The simulated machine is
/// 32-bit-word based (4-byte sharing grain, 16 dirty bits per 64 B line).
pub type Word = u32;

/// Reinterpret an `f32` application value as a machine word.
#[inline]
pub fn f32_to_word(x: f32) -> Word {
    x.to_bits()
}

/// Reinterpret a machine word as an `f32` application value.
#[inline]
pub fn word_to_f32(w: Word) -> f32 {
    f32::from_bits(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        for x in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            assert_eq!(word_to_f32(f32_to_word(x)), x);
        }
    }
}
