//! Property tests for the cache substrate: whatever sequence of fills,
//! writes, merges, invalidations, and (spilled) evictions happens, no
//! written word is ever lost — the cache plus the backing store always
//! holds the newest value of every word.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::{Cache, LineAddr, Memory, WordAddr};
use hic_sim::config::CacheGeometry;
use hic_sim::SplitMix64;

#[derive(Debug, Clone)]
enum OpKind {
    /// Write a word (filling the line from memory if missing).
    Write { line: u64, word: usize, value: u32 },
    /// Read a word and check it (filling if missing).
    Read { line: u64, word: usize },
    /// Invalidate a line, spilling its dirty words to memory.
    Invalidate { line: u64 },
    /// Clean a line (write its dirty words to memory, keep it resident).
    Clean { line: u64 },
}

fn gen_op(rng: &mut SplitMix64) -> OpKind {
    // More lines (24) than capacity: forces evictions.
    let line = rng.below(24);
    match rng.below(4) {
        0 => OpKind::Write {
            line,
            word: rng.below(WORDS_PER_LINE as u64) as usize,
            value: rng.next_u32(),
        },
        1 => OpKind::Read {
            line,
            word: rng.below(WORDS_PER_LINE as u64) as usize,
        },
        2 => OpKind::Invalidate { line },
        _ => OpKind::Clean { line },
    }
}

fn gen_ops(rng: &mut SplitMix64, max_len: u64) -> Vec<OpKind> {
    let len = 1 + rng.below(max_len - 1);
    (0..len).map(|_| gen_op(rng)).collect()
}

/// Tiny cache (4 sets x 2 ways) so evictions are frequent.
fn tiny_cache() -> Cache {
    Cache::new(CacheGeometry {
        size_bytes: 512,
        ways: 2,
        line_bytes: 64,
    })
}

fn spill(mem: &mut Memory, ev: hic_mem::cache::EvictedLine) {
    if ev.dirty != 0 {
        mem.merge_words(ev.addr, &ev.data, ev.dirty);
    }
}

#[test]
fn no_written_word_is_ever_lost() {
    let mut rng = SplitMix64::new(0xCAC4E);
    for case in 0..64 {
        let ops = gen_ops(&mut rng, 200);
        let mut cache = tiny_cache();
        let mut mem = Memory::new();
        // Reference: the true current value of every word.
        let mut model = std::collections::HashMap::<(u64, usize), u32>::new();

        for op in ops {
            match op {
                OpKind::Write { line, word, value } => {
                    let la = LineAddr(line);
                    if cache.write_word(la, word, value).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                        cache.write_word(la, word, value).expect("just filled");
                    }
                    model.insert((line, word), value);
                }
                OpKind::Read { line, word } => {
                    let la = LineAddr(line);
                    let got = match cache.read_word(la, word) {
                        Some(v) => v,
                        None => {
                            let data = mem.read_line(la);
                            if let Some(ev) = cache.fill(la, data, 0) {
                                spill(&mut mem, ev);
                            }
                            cache.read_word(la, word).expect("just filled")
                        }
                    };
                    let want = model.get(&(line, word)).copied().unwrap_or(0);
                    assert_eq!(
                        got, want,
                        "case {case}: read {line}:{word} saw {got} want {want}"
                    );
                }
                OpKind::Invalidate { line } => {
                    if let Some(ev) = cache.invalidate(LineAddr(line)) {
                        spill(&mut mem, ev);
                    }
                }
                OpKind::Clean { line } => {
                    let la = LineAddr(line);
                    if let Some(v) = cache.view(la) {
                        if v.dirty != 0 {
                            let (data, dirty) = (*v.data, v.dirty);
                            mem.merge_words(la, &data, dirty);
                            cache.clean_line(la);
                        }
                    }
                }
            }
            // Counter invariants hold at every step.
            assert!(cache.dirty_lines_resident() <= cache.resident_lines());
            assert!(cache.resident_lines() <= cache.capacity_lines());
        }

        // Drain the cache: memory must now hold the model exactly.
        for la in cache.valid_line_addrs() {
            if let Some(ev) = cache.invalidate(la) {
                spill(&mut mem, ev);
            }
        }
        for ((line, word), want) in model {
            let got = mem.read_word(WordAddr(line * WORDS_PER_LINE as u64 + word as u64));
            assert_eq!(got, want, "case {case}: after drain, {line}:{word}");
        }
    }
}

/// The dirty-line counter always equals the number of lines with a
/// nonzero dirty mask.
#[test]
fn dirty_counter_is_exact() {
    let mut rng = SplitMix64::new(0xD1271);
    for case in 0..64 {
        let ops = gen_ops(&mut rng, 100);
        let mut cache = tiny_cache();
        let mut mem = Memory::new();
        for op in ops {
            match op {
                OpKind::Write { line, word, value } => {
                    let la = LineAddr(line);
                    if cache.write_word(la, word, value).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                        cache.write_word(la, word, value);
                    }
                }
                OpKind::Read { line, word } => {
                    let la = LineAddr(line);
                    if cache.read_word(la, word).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                    }
                }
                OpKind::Invalidate { line } => {
                    if let Some(ev) = cache.invalidate(LineAddr(line)) {
                        spill(&mut mem, ev);
                    }
                }
                OpKind::Clean { line } => {
                    cache.clean_line(LineAddr(line));
                }
            }
            let truth = cache.valid_lines().filter(|v| v.dirty != 0).count();
            assert_eq!(cache.dirty_lines_resident(), truth, "case {case}");
        }
    }
}

/// The incremental valid/dirty slot index (`valid_line_addrs` /
/// `dirty_line_addrs`, backed by per-slot bitmaps) always equals a naive
/// recount over the raw slot sweep (`valid_lines`), in the same order,
/// under arbitrary fill / write / merge / clean / partial-clean /
/// invalidate sequences.
#[test]
fn dirty_index_matches_naive_recount() {
    let mut rng = SplitMix64::new(0x1D8E);
    for case in 0..96 {
        let len = 1 + rng.below(199);
        let mut cache = tiny_cache();
        let mut mem = Memory::new();
        for step in 0..len {
            let line = rng.below(24);
            let la = LineAddr(line);
            match rng.below(7) {
                0 => {
                    // Fill with a random (possibly dirty) mask.
                    let mask = (rng.next_u32() & 0xFFFF) as u16;
                    let data = mem.read_line(la);
                    if let Some(ev) = cache.fill(la, data, mask) {
                        spill(&mut mem, ev);
                    }
                }
                1 => {
                    let word = rng.below(WORDS_PER_LINE as u64) as usize;
                    let value = rng.next_u32();
                    if cache.write_word(la, word, value).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                        cache.write_word(la, word, value);
                    }
                }
                2 => {
                    let mask = (rng.next_u32() & 0xFFFF) as u16;
                    let data = [rng.next_u32(); WORDS_PER_LINE];
                    cache.merge_words(la, &data, mask);
                }
                3 => {
                    cache.clean_line(la);
                }
                4 => {
                    // Partial clean: may or may not leave dirty words.
                    let mask = (rng.next_u32() & 0xFFFF) as u16;
                    cache.clean_words(la, mask);
                }
                _ => {
                    if let Some(ev) = cache.invalidate(la) {
                        spill(&mut mem, ev);
                    }
                }
            }

            let naive_valid: Vec<LineAddr> = cache.valid_lines().map(|v| v.addr).collect();
            let naive_dirty: Vec<LineAddr> = cache
                .valid_lines()
                .filter(|v| v.dirty != 0)
                .map(|v| v.addr)
                .collect();
            assert_eq!(
                cache.valid_line_addrs(),
                naive_valid,
                "case {case} step {step}: valid index diverged from slot sweep"
            );
            assert_eq!(
                cache.dirty_line_addrs(),
                naive_dirty,
                "case {case} step {step}: dirty index diverged from slot sweep"
            );
            assert_eq!(cache.dirty_lines_resident(), naive_dirty.len());
            assert_eq!(cache.resident_lines(), naive_valid.len());
        }
    }
}
