//! Property tests for the cache substrate: whatever sequence of fills,
//! writes, merges, invalidations, and (spilled) evictions happens, no
//! written word is ever lost — the cache plus the backing store always
//! holds the newest value of every word.

use proptest::prelude::*;

use hic_mem::addr::WORDS_PER_LINE;
use hic_mem::{Cache, LineAddr, Memory, WordAddr};
use hic_sim::config::CacheGeometry;

#[derive(Debug, Clone)]
enum OpKind {
    /// Write a word (filling the line from memory if missing).
    Write { line: u64, word: usize, value: u32 },
    /// Read a word and check it (filling if missing).
    Read { line: u64, word: usize },
    /// Invalidate a line, spilling its dirty words to memory.
    Invalidate { line: u64 },
    /// Clean a line (write its dirty words to memory, keep it resident).
    Clean { line: u64 },
}

fn arb_op() -> impl Strategy<Value = OpKind> {
    let line = 0u64..24; // more lines than capacity: forces evictions
    let word = 0usize..WORDS_PER_LINE;
    prop_oneof![
        (line.clone(), word.clone(), any::<u32>())
            .prop_map(|(line, word, value)| OpKind::Write { line, word, value }),
        (line.clone(), word).prop_map(|(line, word)| OpKind::Read { line, word }),
        line.clone().prop_map(|line| OpKind::Invalidate { line }),
        line.prop_map(|line| OpKind::Clean { line }),
    ]
}

fn spill(mem: &mut Memory, ev: hic_mem::cache::EvictedLine) {
    if ev.dirty != 0 {
        mem.merge_words(ev.addr, &ev.data, ev.dirty);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn no_written_word_is_ever_lost(ops in proptest::collection::vec(arb_op(), 1..200)) {
        // Tiny cache (4 sets x 2 ways) so evictions are frequent.
        let mut cache = Cache::new(CacheGeometry { size_bytes: 512, ways: 2, line_bytes: 64 });
        let mut mem = Memory::new();
        // Reference: the true current value of every word.
        let mut model = std::collections::HashMap::<(u64, usize), u32>::new();

        for op in ops {
            match op {
                OpKind::Write { line, word, value } => {
                    let la = LineAddr(line);
                    if cache.write_word(la, word, value).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                        cache.write_word(la, word, value).expect("just filled");
                    }
                    model.insert((line, word), value);
                }
                OpKind::Read { line, word } => {
                    let la = LineAddr(line);
                    let got = match cache.read_word(la, word) {
                        Some(v) => v,
                        None => {
                            let data = mem.read_line(la);
                            if let Some(ev) = cache.fill(la, data, 0) {
                                spill(&mut mem, ev);
                            }
                            cache.read_word(la, word).expect("just filled")
                        }
                    };
                    let want = model.get(&(line, word)).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "read {}:{} saw {} want {}", line, word, got, want);
                }
                OpKind::Invalidate { line } => {
                    if let Some(ev) = cache.invalidate(LineAddr(line)) {
                        spill(&mut mem, ev);
                    }
                }
                OpKind::Clean { line } => {
                    let la = LineAddr(line);
                    if let Some(v) = cache.view(la) {
                        if v.dirty != 0 {
                            let (data, dirty) = (*v.data, v.dirty);
                            mem.merge_words(la, &data, dirty);
                            cache.clean_line(la);
                        }
                    }
                }
            }
            // Counter invariants hold at every step.
            prop_assert!(cache.dirty_lines_resident() <= cache.resident_lines());
            prop_assert!(cache.resident_lines() <= cache.capacity_lines());
        }

        // Drain the cache: memory must now hold the model exactly.
        for la in cache.valid_line_addrs() {
            if let Some(ev) = cache.invalidate(la) {
                spill(&mut mem, ev);
            }
        }
        for ((line, word), want) in model {
            let got = mem.read_word(WordAddr(line * WORDS_PER_LINE as u64 + word as u64));
            prop_assert_eq!(got, want, "after drain, {}:{}", line, word);
        }
    }

    /// The dirty-line counter always equals the number of lines with a
    /// nonzero dirty mask.
    #[test]
    fn dirty_counter_is_exact(ops in proptest::collection::vec(arb_op(), 1..100)) {
        let mut cache = Cache::new(CacheGeometry { size_bytes: 512, ways: 2, line_bytes: 64 });
        let mut mem = Memory::new();
        for op in ops {
            match op {
                OpKind::Write { line, word, value } => {
                    let la = LineAddr(line);
                    if cache.write_word(la, word, value).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                        cache.write_word(la, word, value);
                    }
                }
                OpKind::Read { line, word } => {
                    let la = LineAddr(line);
                    if cache.read_word(la, word).is_none() {
                        let data = mem.read_line(la);
                        if let Some(ev) = cache.fill(la, data, 0) {
                            spill(&mut mem, ev);
                        }
                    }
                }
                OpKind::Invalidate { line } => {
                    if let Some(ev) = cache.invalidate(LineAddr(line)) {
                        spill(&mut mem, ev);
                    }
                }
                OpKind::Clean { line } => {
                    cache.clean_line(LineAddr(line));
                }
            }
            let truth = cache.valid_lines().filter(|v| v.dirty != 0).count();
            prop_assert_eq!(cache.dirty_lines_resident(), truth);
        }
    }
}
