//! Seeded, deterministic fault injection for the hardware-incoherent
//! hierarchy.
//!
//! The paper's central claim is that correctness in an incoherent
//! hierarchy comes from *software-placed* WB/INV instructions and sync
//! ordering, never from hardware timing. That makes correctness
//! **timing-independent**: any protocol-legal perturbation of NoC
//! latency, controller ack timing, or retry schedules must leave the
//! readable memory of a race-free program bit-identical (only cycles and
//! traffic may move). This crate defines the perturbations and the
//! accounting; `tests/fault_resilience.rs` proves the invariant
//! metamorphically.
//!
//! A [`FaultPlan`] is a pure function of a seed: two runs with the same
//! plan take identical fault decisions, so every faulted run is exactly
//! reproducible. Four fault classes are modeled, all of them ones a
//! Runnemede-style near-threshold machine (PAPERS.md) must survive:
//!
//! * **Link jitter / transient slowdowns** — extra latency on mesh links
//!   ([`hic_noc::LinkFaults`]). Pure timing; always recoverable.
//! * **Dropped flits** — a transfer is lost and retransmitted by the
//!   controller after a timeout with exponential backoff. Costs latency
//!   and retry flits; counted in [`ResilienceStats`]. Always recoverable.
//! * **Delayed sync acks** — the sync controller's grant ack is held for
//!   extra cycles. Pure timing; always recoverable.
//! * **Single-bit flips in cache lines** — detected by per-line parity in
//!   `hic-mem`. A flip in a *clean* line recovers by invalidate + refetch
//!   from the next level (recovery traffic is counted); a flip in a
//!   *dirty* line destroys the only copy of the data and — without
//!   checkpoint recovery ([`FaultPlan::recover`]) — must surface as a
//!   typed fatal error, never as a silently wrong answer. With recovery
//!   enabled the backend restores the line from its epoch checkpoint and
//!   replays the journaled stores, charging `rollbacks`/`rollback_cycles`
//!   in [`ResilienceStats`]; only a second upset striking the same line
//!   during its own replay window ([`FaultState::replay_flip`]) still
//!   surfaces the fatal.

use hic_noc::{mix64, LinkFaults};
use serde::{Deserialize, Serialize};

/// A complete, seeded description of what to perturb. Fully determines
/// every fault decision of a run; serializable into run diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed. Every component derives its decisions from this.
    pub seed: u64,
    /// Static per-link latency jitter, uniform in `0..=link_jitter_max`
    /// cycles. 0 disables.
    pub link_jitter_max: u64,
    /// Every `slow_period` traversals of a link, the next `slow_len`
    /// traversals are slowed by `slow_factor`. `slow_period == 0` or
    /// `slow_factor == 1` disables.
    pub slow_period: u64,
    pub slow_len: u64,
    pub slow_factor: u64,
    /// Roughly one in `drop_period` memory-path transfers is dropped and
    /// retransmitted. 0 disables.
    pub drop_period: u64,
    /// Cycles the controller waits before the first retransmission;
    /// doubles per consecutive drop (exponential backoff).
    pub retry_timeout: u64,
    /// Upper bound on consecutive drops of one transfer (the retry that
    /// follows the last allowed drop always succeeds).
    pub max_retries: u32,
    /// Roughly one in `ack_delay_period` sync-controller grant acks is
    /// delayed by `ack_delay_cycles`. 0 disables.
    pub ack_delay_period: u64,
    pub ack_delay_cycles: u64,
    /// Roughly one in `flip_period` L1 reads flips one bit in the line
    /// being read (before the read observes it). 0 disables.
    pub flip_period: u64,
    /// Allow flips to land in lines holding dirty words. A dirty-line
    /// flip destroys the only copy of the data; without `recover` it
    /// surfaces as a fatal `RunError`. Plans with `flip_dirty == false`
    /// only ever corrupt clean lines, so they must always recover.
    pub flip_dirty: bool,
    /// Enable epoch-checkpoint rollback recovery: the backend keeps a
    /// copy-on-write image + store journal per dirty L1 line and, when
    /// parity detects a dirty-line flip, restores the line and replays
    /// the journaled stores instead of latching `CorruptDirtyLine`. The
    /// fatal remains reachable only via a second upset during the replay
    /// window itself ([`FaultState::replay_flip`]).
    pub recover: bool,
}

impl FaultPlan {
    /// A plan with every amplitude at zero. Installing it must be
    /// bit-identical to installing nothing — in cycles *and* traffic.
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            link_jitter_max: 0,
            slow_period: 0,
            slow_len: 0,
            slow_factor: 1,
            drop_period: 0,
            retry_timeout: 0,
            max_retries: 0,
            ack_delay_period: 0,
            ack_delay_cycles: 0,
            flip_period: 0,
            flip_dirty: false,
            recover: false,
        }
    }

    /// A randomized timing-only plan: jitter, slowdowns, drops/retries,
    /// and ack delays, but no bit flips. Readable memory must be
    /// bit-identical to the unfaulted run for race-free programs.
    pub fn timing_only(seed: u64) -> FaultPlan {
        let r = |salt: u64| mix64(seed ^ salt);
        FaultPlan {
            seed,
            link_jitter_max: 1 + r(0x01) % 8,
            slow_period: 16 + r(0x02) % 48,
            slow_len: 1 + r(0x03) % 8,
            slow_factor: 2 + r(0x04) % 3,
            drop_period: 64 + r(0x05) % 192,
            retry_timeout: 20 + r(0x06) % 60,
            max_retries: 3,
            ack_delay_period: 8 + r(0x07) % 24,
            ack_delay_cycles: 10 + r(0x08) % 40,
            flip_period: 0,
            flip_dirty: false,
            recover: false,
        }
    }

    /// The canned recoverable plan used by the `HIC_FAULTS=<seed>` env
    /// knob: timing faults plus clean-line bit flips. Every fault in it
    /// is recoverable, so any race-free program must still produce
    /// bit-identical readable memory (and stay finding-free under
    /// `HIC_CHECK=strict`).
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            flip_period: 400,
            flip_dirty: false,
            ..FaultPlan::timing_only(seed)
        }
    }

    /// A deliberately *unrecoverable* plan: [`FaultPlan::from_seed`]'s
    /// timing faults plus aggressive bit flips allowed to land in dirty
    /// lines. A dirty-line flip destroys the only copy of the data, so
    /// any run that writes to memory fails with a typed
    /// `RunError::CorruptDirtyLine`. This exists to *poison* a run on
    /// purpose — e.g. proving that one failing job in a sweep-server
    /// batch surfaces its error without taking the other jobs down.
    pub fn corrupting(seed: u64) -> FaultPlan {
        FaultPlan {
            flip_period: 1,
            flip_dirty: true,
            ..FaultPlan::from_seed(seed)
        }
    }

    /// [`FaultPlan::from_seed`]'s timing faults plus bit flips allowed to
    /// land in dirty lines — but with epoch-checkpoint rollback recovery
    /// enabled, so dirty-line corruption is repaired by restore + replay
    /// instead of killing the run. Every fault in this plan is
    /// recoverable modulo the (deterministically seeded, rare at
    /// `flip_period = 400`) second-upset-during-replay case, so race-free
    /// programs must complete with bit-identical readable memory and
    /// `ResilienceStats::rollbacks` accounting the repairs.
    pub fn corrupting_recoverable(seed: u64) -> FaultPlan {
        FaultPlan {
            flip_dirty: true,
            recover: true,
            ..FaultPlan::from_seed(seed)
        }
    }

    /// True when no amplitude is nonzero (installing the plan cannot
    /// change anything).
    pub fn is_zero(&self) -> bool {
        self.link_jitter_max == 0
            && (self.slow_period == 0 || self.slow_factor <= 1)
            && self.drop_period == 0
            && self.ack_delay_period == 0
            && self.flip_period == 0
    }

    /// The link-fault component, ready to install into a mesh.
    pub fn link_faults(&self) -> LinkFaults {
        LinkFaults::new(
            self.seed,
            self.link_jitter_max,
            self.slow_period,
            self.slow_len,
            self.slow_factor,
        )
    }

    /// One-line human summary for diagnostics.
    pub fn summary(&self) -> String {
        if self.is_zero() {
            return format!("fault plan seed={} (zero: no perturbation)", self.seed);
        }
        format!(
            "fault plan seed={}: jitter<={}cyc, slowdown {}/{} x{}, drop 1/{} (retry {}cyc, <= {}), \
             ack delay 1/{} +{}cyc, bit flip 1/{} ({} lines{})",
            self.seed,
            self.link_jitter_max,
            self.slow_len,
            self.slow_period,
            self.slow_factor,
            self.drop_period,
            self.retry_timeout,
            self.max_retries,
            self.ack_delay_period,
            self.ack_delay_cycles,
            self.flip_period,
            if self.flip_dirty { "any" } else { "clean" },
            if self.recover { ", rollback recovery" } else { "" },
        )
    }
}

/// Running counts of injected faults and the work spent recovering from
/// them. Lives in `RunStats`; merged from the backend and the machine's
/// sync controller at `Machine::finish`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Flits lost to injected drops (each re-sent transfer re-counts its
    /// flits under `retry_flits`).
    pub dropped_flits: u64,
    /// Retransmissions performed by the controller-side retry.
    pub retries: u64,
    /// Flits re-sent by retries (charged to the same traffic category as
    /// the original transfer).
    pub retry_flits: u64,
    /// Extra cycles spent in retry timeouts (exponential backoff).
    pub retry_cycles: u64,
    /// Single-bit flips injected into cache lines.
    pub bit_flips: u64,
    /// Flips detected by parity in clean lines and repaired by refetch.
    pub flips_recovered: u64,
    /// Flits spent refetching lines to repair detected flips.
    pub recovery_flits: u64,
    /// Sync-controller grant acks that were delayed.
    pub delayed_acks: u64,
    /// Extra cycles added to delayed acks.
    pub ack_delay_cycles: u64,
    /// Dirty-line corruptions repaired by checkpoint restore + replay
    /// (only nonzero under `FaultPlan::recover`).
    pub rollbacks: u64,
    /// Extra cycles charged to rollbacks: the restore round-trip plus
    /// one cycle per replayed journal store.
    pub rollback_cycles: u64,
    /// Words captured into copy-on-write epoch checkpoints (each first
    /// store to an untracked line snapshots the full line image).
    pub checkpoint_words: u64,
}

impl ResilienceStats {
    pub fn is_zero(&self) -> bool {
        *self == ResilienceStats::default()
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            dropped_flits: self.dropped_flits + o.dropped_flits,
            retries: self.retries + o.retries,
            retry_flits: self.retry_flits + o.retry_flits,
            retry_cycles: self.retry_cycles + o.retry_cycles,
            bit_flips: self.bit_flips + o.bit_flips,
            flips_recovered: self.flips_recovered + o.flips_recovered,
            recovery_flits: self.recovery_flits + o.recovery_flits,
            delayed_acks: self.delayed_acks + o.delayed_acks,
            ack_delay_cycles: self.ack_delay_cycles + o.ack_delay_cycles,
            rollbacks: self.rollbacks + o.rollbacks,
            rollback_cycles: self.rollback_cycles + o.rollback_cycles,
            checkpoint_words: self.checkpoint_words + o.checkpoint_words,
        }
    }
}

impl std::ops::AddAssign for ResilienceStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.merged(&rhs);
    }
}

/// Per-component dynamic fault state: the plan plus event counters.
/// Each consumer (the memory backend, the machine's sync controller)
/// owns its own `FaultState` with a distinct `salt`, so their decision
/// streams are independent but individually reproducible.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    salt: u64,
    transfers: u64,
    acks: u64,
    reads: u64,
    replays: u64,
    /// Injected-fault accounting, merged into `RunStats` at finish.
    pub stats: ResilienceStats,
}

/// Salt for the memory-backend fault stream.
pub const SALT_MEM: u64 = 0x4D45_4D00;
/// Salt for the sync-controller fault stream.
pub const SALT_SYNC: u64 = 0x5359_4E00;

impl FaultState {
    pub fn new(plan: FaultPlan, salt: u64) -> FaultState {
        FaultState {
            plan,
            salt,
            transfers: 0,
            acks: 0,
            reads: 0,
            replays: 0,
            stats: ResilienceStats::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    #[inline]
    fn decide(&self, stream: u64, event: u64, period: u64) -> bool {
        period > 0
            && mix64(self.plan.seed ^ self.salt ^ stream ^ event.wrapping_mul(0x9E37))
                .is_multiple_of(period)
    }

    /// Account one memory-path transfer of `flits` flits. Returns
    /// `(extra_cycles, extra_flits)`: the retry-timeout latency (with
    /// exponential backoff) and the retransmitted flits caused by
    /// injected drops. `(0, 0)` on the (overwhelmingly common) clean
    /// path.
    #[inline]
    pub fn on_transfer(&mut self, flits: u64) -> (u64, u64) {
        if self.plan.drop_period == 0 {
            return (0, 0);
        }
        let n = self.transfers;
        self.transfers += 1;
        if !self.decide(0x7472, n, self.plan.drop_period) {
            return (0, 0);
        }
        // The transfer was dropped at least once. Each consecutive drop
        // doubles the timeout; the drop after `max_retries` always
        // succeeds, bounding the tail.
        let mut drops: u32 = 1;
        while drops < self.plan.max_retries.max(1)
            && self.decide(0x7273, n.wrapping_mul(7).wrapping_add(drops as u64), 2)
        {
            drops += 1;
        }
        // timeout + 2*timeout + ... = timeout * (2^drops - 1).
        let extra_cycles = self
            .plan
            .retry_timeout
            .saturating_mul((1u64 << drops.min(32)) - 1);
        let extra_flits = flits * drops as u64;
        self.stats.dropped_flits += extra_flits;
        self.stats.retries += drops as u64;
        self.stats.retry_flits += extra_flits;
        self.stats.retry_cycles += extra_cycles;
        (extra_cycles, extra_flits)
    }

    /// Account one sync-controller grant ack. Returns the extra cycles
    /// the ack is held for (usually 0).
    #[inline]
    pub fn on_ack(&mut self) -> u64 {
        if self.plan.ack_delay_period == 0 {
            return 0;
        }
        let n = self.acks;
        self.acks += 1;
        if self.decide(0x61636B, n, self.plan.ack_delay_period) {
            self.stats.delayed_acks += 1;
            self.stats.ack_delay_cycles += self.plan.ack_delay_cycles;
            self.plan.ack_delay_cycles
        } else {
            0
        }
    }

    /// Decide whether this L1 read suffers a bit flip. Returns the
    /// `(word_selector, bit)` to corrupt (the caller maps the selector
    /// onto the line) or `None`.
    #[inline]
    pub fn flip_decision(&mut self) -> Option<(usize, u32)> {
        if self.plan.flip_period == 0 {
            return None;
        }
        let n = self.reads;
        self.reads += 1;
        if !self.decide(0x666C70, n, self.plan.flip_period) {
            return None;
        }
        let r = mix64(self.plan.seed ^ self.salt ^ 0x776264 ^ n);
        Some(((r >> 8) as usize, (r % 32) as u32))
    }

    /// Whether flips may land in dirty lines (unrecoverable).
    pub fn flip_dirty_allowed(&self) -> bool {
        self.plan.flip_dirty
    }

    /// Whether dirty-line corruption is repaired by checkpoint rollback.
    pub fn recover_enabled(&self) -> bool {
        self.plan.recover
    }

    /// Decide whether a *second* upset strikes the line being rolled
    /// back during its own replay of `replayed_stores` journaled stores.
    /// The replay window is `replayed_stores` accesses long and the
    /// upset must land back in the very line under repair, so the
    /// per-rollback probability is `replayed_stores / flip_period²` —
    /// vanishing for the canned 1/400 plans, but `flip_period == 1`
    /// (the poison plans) makes any non-empty replay deterministically
    /// re-corrupt, which is how the two-corruptions-in-one-epoch fatal
    /// is forced in tests. Draws from its own counter + salt so the
    /// primary flip stream is unperturbed by recovery.
    #[inline]
    pub fn replay_flip(&mut self, replayed_stores: u64) -> bool {
        if self.plan.flip_period == 0 || replayed_stores == 0 {
            return false;
        }
        let n = self.replays;
        self.replays += 1;
        let window = self.plan.flip_period.saturating_mul(self.plan.flip_period);
        mix64(self.plan.seed ^ self.salt ^ 0x7270_6C79 ^ n.wrapping_mul(0x9E37)) % window
            < replayed_stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero_and_inert() {
        let p = FaultPlan::zero(17);
        assert!(p.is_zero());
        let mut s = FaultState::new(p, SALT_MEM);
        for _ in 0..1000 {
            assert_eq!(s.on_transfer(9), (0, 0));
            assert_eq!(s.on_ack(), 0);
            assert_eq!(s.flip_decision(), None);
        }
        assert!(s.stats.is_zero());
    }

    #[test]
    fn timing_only_plans_never_flip() {
        for seed in 0..32 {
            let p = FaultPlan::timing_only(seed);
            assert!(!p.is_zero());
            assert_eq!(p.flip_period, 0);
        }
    }

    #[test]
    fn canned_plan_flips_only_clean_lines() {
        let p = FaultPlan::from_seed(3);
        assert!(p.flip_period > 0);
        assert!(!p.flip_dirty);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let mut s = FaultState::new(FaultPlan::timing_only(42), SALT_MEM);
            let transfers: Vec<(u64, u64)> = (0..500).map(|_| s.on_transfer(9)).collect();
            let acks: Vec<u64> = (0..500).map(|_| s.on_ack()).collect();
            (transfers, acks, s.stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distinct_salts_give_distinct_streams() {
        let mut a = FaultState::new(FaultPlan::timing_only(42), SALT_MEM);
        let mut b = FaultState::new(FaultPlan::timing_only(42), SALT_SYNC);
        let va: Vec<(u64, u64)> = (0..2000).map(|_| a.on_transfer(9)).collect();
        let vb: Vec<(u64, u64)> = (0..2000).map(|_| b.on_transfer(9)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn drops_do_happen_and_backoff_is_bounded() {
        let mut s = FaultState::new(FaultPlan::timing_only(7), SALT_MEM);
        let mut total_extra = 0u64;
        for _ in 0..10_000 {
            let (cyc, flits) = s.on_transfer(9);
            if flits > 0 {
                // At most max_retries retransmissions per transfer.
                assert!(flits <= 9 * 3);
            }
            total_extra += cyc;
        }
        assert!(
            s.stats.retries > 0,
            "a 1/[64,256) drop rate must fire in 10k transfers"
        );
        assert!(total_extra > 0);
        assert_eq!(s.stats.retry_flits, s.stats.dropped_flits);
    }

    #[test]
    fn flips_fire_at_roughly_the_configured_rate() {
        let mut s = FaultState::new(FaultPlan::from_seed(11), SALT_MEM);
        let flips = (0..40_000).filter_map(|_| s.flip_decision()).count();
        assert!(flips > 20, "expected ~100 flips in 40k reads, got {flips}");
        for _ in 0..1000 {
            if let Some((_, bit)) = s.flip_decision() {
                assert!(bit < 32);
            }
        }
    }

    #[test]
    fn summary_mentions_the_seed() {
        assert!(FaultPlan::from_seed(99).summary().contains("seed=99"));
        assert!(FaultPlan::zero(5).summary().contains("zero"));
        assert!(FaultPlan::corrupting_recoverable(99)
            .summary()
            .contains("rollback recovery"));
    }

    #[test]
    fn recoverable_corrupting_plan_keeps_the_canned_rates() {
        let p = FaultPlan::corrupting_recoverable(7);
        assert!(p.recover && p.flip_dirty);
        assert_eq!(p.flip_period, FaultPlan::from_seed(7).flip_period);
        // The poison plan stays unrecoverable: serve's failure-isolation
        // contract depends on it latching the typed fatal.
        assert!(!FaultPlan::corrupting(7).recover);
    }

    #[test]
    fn replay_flip_is_deterministic_and_forced_at_period_one() {
        // flip_period == 1: any non-empty replay re-corrupts.
        let mut s = FaultState::new(FaultPlan::corrupting(3), SALT_MEM);
        assert!(!s.replay_flip(0), "empty replay exposes no window");
        assert!(s.replay_flip(1));
        assert!(s.replay_flip(5));
        // Canned 1/400 plans: second upsets are rare but reproducible.
        let draw = || {
            let mut s = FaultState::new(FaultPlan::corrupting_recoverable(11), SALT_MEM);
            (0..10_000).map(|_| s.replay_flip(4)).collect::<Vec<_>>()
        };
        let hits = draw().iter().filter(|&&b| b).count();
        assert!(hits < 10, "~replayed/period^2 per rollback, got {hits}/10k");
        assert_eq!(draw(), draw());
    }

    #[test]
    fn replay_flips_do_not_perturb_the_primary_streams() {
        let run = |with_replays: bool| {
            let mut s = FaultState::new(FaultPlan::corrupting_recoverable(42), SALT_MEM);
            (0..2000)
                .map(|i| {
                    if with_replays && i % 7 == 0 {
                        s.replay_flip(3);
                    }
                    (s.on_transfer(9), s.flip_decision())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn rollback_stats_merge() {
        let a = ResilienceStats {
            rollbacks: 2,
            rollback_cycles: 40,
            checkpoint_words: 64,
            ..ResilienceStats::default()
        };
        let m = a.merged(&a);
        assert_eq!(m.rollbacks, 4);
        assert_eq!(m.rollback_cycles, 80);
        assert_eq!(m.checkpoint_words, 128);
    }
}
