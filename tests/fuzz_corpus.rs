//! Replay every checked-in `corpus/` case and assert its recorded
//! verdict still holds. The corpus is the fuzzer's regression memory:
//! hand-minimized seed cases (missing-WB, missing-INV, the racy-write
//! precision case, a narrowed plan, clean sync shapes) plus whatever
//! past campaigns minimized and persisted. A mismatch means an analysis
//! changed its verdict on a previously-audited program — either an
//! intentional semantic change (update the expectation) or a regression.

use std::path::Path;

use hic_fuzz::{load_corpus, run_case};

#[test]
fn corpus_replays_with_expected_verdicts() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let cases = load_corpus(&dir).expect("corpus/ must be present and parseable");
    assert!(
        cases.len() >= 5,
        "seed corpus eroded: only {} cases in {}",
        cases.len(),
        dir.display()
    );
    let mut failures = Vec::new();
    for (path, desc, expected) in &cases {
        let outcome = run_case(desc);
        let got = outcome.verdict.expect_tag();
        if got != *expected {
            failures.push(format!(
                "{}: expected {expected} got {got} ({})",
                path.display(),
                outcome.detail
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_all_audit_classes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let cases = load_corpus(&dir).expect("corpus/ must be present and parseable");
    for want in [
        "clean",
        "findings:missing-wb",
        "findings:missing-inv",
        "precision:write-race",
    ] {
        assert!(
            cases.iter().any(|(_, _, e)| e == want),
            "no corpus case with expectation {want}"
        );
    }
    // At least one case must exercise the corrupting-fault rollback
    // recovery audit (survive the corruption, stay bit-identical).
    assert!(
        cases.iter().any(|(_, d, _)| d.corrupt),
        "no corpus case with the recovery audit enabled"
    );
}
