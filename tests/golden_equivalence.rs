//! Golden-equivalence pin: the preset topologies construct machines
//! bit-identical to the pre-`Topology` seed.
//!
//! The table below was captured from the seed implementation (before
//! `MachineConfig` grew a validated `Topology`) by running every app of
//! both suites at `Scale::Test` under every Table II configuration and
//! recording total cycles plus the six traffic-ledger categories. The
//! refactor's contract is that `Topology::intra_block()` /
//! `Topology::inter_block()` describe *exactly* the machines the seed
//! hard-coded — so every row must reproduce, cycle for cycle and flit
//! for flit.
//!
//! Regenerate (only when an intentional timing-model change lands) with:
//!   cargo run --release -p hic-bench --bin golden_dump

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig};

/// (app, config, total_cycles, [linefill, writeback, invalidation,
/// memory, l2l3, sync]) — captured at the seed commit.
#[rustfmt::skip]
const GOLDEN: &[(&str, &str, u64, [u64; 6])] = &[
    ("FFT", "HCC", 14751, [13100, 4152, 6256, 320, 0, 288]),
    ("FFT", "Base", 7014, [4640, 1568, 0, 320, 0, 288]),
    ("FFT", "B+M", 7014, [4640, 1568, 0, 320, 0, 288]),
    ("FFT", "B+I", 7014, [4640, 1568, 0, 320, 0, 288]),
    ("FFT", "B+M+I", 7014, [4640, 1568, 0, 320, 0, 288]),
    ("LU cont", "HCC", 4822, [280, 71, 30, 80, 0, 384]),
    ("LU cont", "Base", 7043, [350, 140, 0, 80, 0, 384]),
    ("LU cont", "B+M", 7043, [350, 140, 0, 80, 0, 384]),
    ("LU cont", "B+I", 7043, [350, 140, 0, 80, 0, 384]),
    ("LU cont", "B+M+I", 7043, [350, 140, 0, 80, 0, 384]),
    ("LU non-cont", "HCC", 16017, [5325, 1654, 2950, 80, 0, 384]),
    ("LU non-cont", "Base", 9184, [1000, 220, 0, 80, 0, 384]),
    ("LU non-cont", "B+M", 9184, [1000, 220, 0, 80, 0, 384]),
    ("LU non-cont", "B+I", 9184, [1000, 220, 0, 80, 0, 384]),
    ("LU non-cont", "B+M+I", 9184, [1000, 220, 0, 80, 0, 384]),
    ("Cholesky", "HCC", 4258, [1415, 298, 534, 85, 0, 448]),
    ("Cholesky", "Base", 9610, [1965, 617, 0, 85, 0, 448]),
    ("Cholesky", "B+M", 9479, [1965, 617, 0, 85, 0, 448]),
    ("Cholesky", "B+I", 9598, [1965, 617, 0, 85, 0, 448]),
    ("Cholesky", "B+M+I", 9467, [1965, 617, 0, 85, 0, 448]),
    ("Barnes", "HCC", 57113, [6765, 954, 1428, 380, 0, 323]),
    ("Barnes", "Base", 55597, [7365, 849, 0, 380, 0, 323]),
    ("Barnes", "B+M", 49509, [7365, 849, 0, 380, 0, 323]),
    ("Barnes", "B+I", 56405, [7505, 869, 0, 380, 0, 323]),
    ("Barnes", "B+M+I", 50317, [7505, 869, 0, 380, 0, 323]),
    ("Raytrace", "HCC", 3463, [480, 62, 128, 100, 0, 160]),
    ("Raytrace", "Base", 5881, [480, 144, 0, 100, 0, 160]),
    ("Raytrace", "B+M", 3785, [480, 144, 0, 100, 0, 160]),
    ("Raytrace", "B+I", 7923, [480, 144, 0, 100, 0, 160]),
    ("Raytrace", "B+M+I", 3907, [480, 144, 0, 100, 0, 160]),
    ("Volrend", "HCC", 5862, [1455, 308, 438, 255, 0, 296]),
    ("Volrend", "Base", 9612, [1430, 160, 0, 255, 0, 296]),
    ("Volrend", "B+M", 6461, [1430, 160, 0, 255, 0, 296]),
    ("Volrend", "B+I", 9600, [1430, 160, 0, 255, 0, 296]),
    ("Volrend", "B+M+I", 6443, [1430, 160, 0, 255, 0, 296]),
    ("Ocean cont", "HCC", 3334, [645, 66, 186, 185, 0, 224]),
    ("Ocean cont", "Base", 6448, [810, 122, 0, 185, 0, 224]),
    ("Ocean cont", "B+M", 4967, [810, 122, 0, 185, 0, 224]),
    ("Ocean cont", "B+I", 8912, [810, 122, 0, 185, 0, 224]),
    ("Ocean cont", "B+M+I", 4955, [810, 122, 0, 185, 0, 224]),
    ("Ocean non-cont", "HCC", 3561, [1160, 277, 410, 120, 0, 224]),
    ("Ocean non-cont", "Base", 5946, [850, 148, 0, 120, 0, 224]),
    ("Ocean non-cont", "B+M", 4834, [850, 148, 0, 120, 0, 224]),
    ("Ocean non-cont", "B+I", 8846, [850, 148, 0, 120, 0, 224]),
    ("Ocean non-cont", "B+M+I", 4826, [850, 148, 0, 120, 0, 224]),
    ("Water Nsq", "HCC", 4040, [1125, 164, 442, 215, 0, 144]),
    ("Water Nsq", "Base", 5349, [985, 178, 0, 215, 0, 144]),
    ("Water Nsq", "B+M", 3825, [985, 178, 0, 215, 0, 144]),
    ("Water Nsq", "B+I", 5351, [985, 178, 0, 215, 0, 144]),
    ("Water Nsq", "B+M+I", 3819, [985, 178, 0, 215, 0, 144]),
    ("Water Spatial", "HCC", 1685, [1580, 268, 616, 60, 0, 64]),
    ("Water Spatial", "Base", 1517, [1020, 144, 0, 60, 0, 64]),
    ("Water Spatial", "B+M", 1517, [1020, 144, 0, 60, 0, 64]),
    ("Water Spatial", "B+I", 1517, [1020, 144, 0, 60, 0, 64]),
    ("Water Spatial", "B+M+I", 1517, [1020, 144, 0, 60, 0, 64]),
    ("EP", "HCC", 17368, [325, 190, 326, 10, 323, 160]),
    ("EP", "Base", 36056, [325, 192, 0, 10, 517, 160]),
    ("EP", "Addr", 35987, [325, 192, 0, 10, 517, 160]),
    ("EP", "Addr+L", 35987, [325, 192, 0, 10, 517, 160]),
    ("IS", "HCC", 15849, [6665, 707, 1438, 325, 2415, 224]),
    ("IS", "Base", 41996, [6755, 650, 0, 325, 2105, 224]),
    ("IS", "Addr", 41133, [6755, 650, 0, 325, 2075, 224]),
    ("IS", "Addr+L", 41133, [6755, 650, 0, 325, 2075, 224]),
    ("CG", "HCC", 9875, [8725, 1656, 3968, 360, 1434, 1152]),
    ("CG", "Base", 20595, [8355, 968, 0, 360, 2683, 1152]),
    ("CG", "Addr", 5659, [3240, 522, 0, 360, 1362, 1152]),
    ("CG", "Addr+L", 5645, [3240, 522, 0, 360, 1342, 1152]),
    ("Jacobi", "HCC", 2967, [1580, 480, 676, 340, 550, 320]),
    ("Jacobi", "Base", 6371, [2560, 640, 0, 340, 2080, 320]),
    ("Jacobi", "Addr", 2850, [1580, 640, 0, 340, 1595, 320]),
    ("Jacobi", "Addr+L", 2616, [1580, 640, 0, 340, 710, 320]),
];

fn golden_row(app: &str, cfg: &str) -> &'static (&'static str, &'static str, u64, [u64; 6]) {
    GOLDEN
        .iter()
        .find(|(a, c, _, _)| *a == app && *c == cfg)
        .unwrap_or_else(|| panic!("no golden row for {app} / {cfg}"))
}

fn check(app: &dyn hic_apps::App, config: Config) {
    let r = app.run(config);
    assert!(
        r.correct,
        "{} under {}: {}",
        app.name(),
        config.name(),
        r.detail
    );
    let (_, _, cycles, traffic) = golden_row(app.name(), config.name());
    assert_eq!(
        r.stats.total_cycles,
        *cycles,
        "{} under {}: cycles drifted from the seed",
        app.name(),
        config.name()
    );
    let t = r.stats.traffic;
    let got = [
        t.linefill,
        t.writeback,
        t.invalidation,
        t.memory,
        t.l2l3,
        t.sync,
    ];
    assert_eq!(
        got,
        *traffic,
        "{} under {}: traffic drifted from the seed \
         [linefill, writeback, invalidation, memory, l2l3, sync]",
        app.name(),
        config.name()
    );
}

/// Every intra app under every Table II intra config reproduces the
/// seed's cycles and traffic exactly.
#[test]
fn intra_suite_matches_seed_golden_data() {
    for app in intra_apps(Scale::Test) {
        for cfg in IntraConfig::ALL {
            check(app.as_ref(), Config::Intra(cfg));
        }
    }
}

/// Every inter app under every Table II inter config reproduces the
/// seed's cycles and traffic exactly.
#[test]
fn inter_suite_matches_seed_golden_data() {
    for app in inter_apps(Scale::Test) {
        for cfg in InterConfig::ALL {
            check(app.as_ref(), Config::Inter(cfg));
        }
    }
}

/// The golden table covers the full matrix (11 intra apps x 5 configs +
/// 4 inter apps x 4 configs).
#[test]
fn golden_table_is_complete() {
    assert_eq!(GOLDEN.len(), 11 * 5 + 4 * 4);
}
