//! End-to-end: every application x every configuration must compute the
//! same (host-verified) result. A stale read anywhere — a missing WB/INV,
//! a broken MESI transition, a lost dirty word — fails these tests.

use hic_apps::{inter_apps, intra_apps, App, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig, RunRequest};

// CI reruns this suite under the environment knobs (HIC_CHECK,
// HIC_FAULTS, HIC_ENGINE), so requests are assembled with `from_env`:
// the same explicit-RunRequest path the server uses, with the knobs
// folded in up front instead of read per run.
fn check_intra(app: &dyn App) {
    for cfg in IntraConfig::ALL {
        let req = RunRequest::from_env(app.name(), Config::Intra(cfg), app.scale())
            .expect("well-formed HIC_* knobs");
        let r = app.run_req(&req);
        assert!(
            r.correct,
            "{} under {} computed a wrong result: {}",
            app.name(),
            cfg.name(),
            r.detail
        );
        assert!(r.stats.total_cycles > 0);
    }
}

fn check_inter(app: &dyn App) {
    for cfg in InterConfig::ALL {
        let req = RunRequest::from_env(app.name(), Config::Inter(cfg), app.scale())
            .expect("well-formed HIC_* knobs");
        let r = app.run_req(&req);
        assert!(
            r.correct,
            "{} under {} computed a wrong result: {}",
            app.name(),
            cfg.name(),
            r.detail
        );
        assert!(r.stats.total_cycles > 0);
    }
}

macro_rules! intra_test {
    ($fn_name:ident, $app_name:expr) => {
        #[test]
        fn $fn_name() {
            let apps = intra_apps(Scale::Test);
            let app = apps
                .iter()
                .find(|a| a.name() == $app_name)
                .expect("app registered");
            check_intra(app.as_ref());
        }
    };
}

macro_rules! inter_test {
    ($fn_name:ident, $app_name:expr) => {
        #[test]
        fn $fn_name() {
            let apps = inter_apps(Scale::Test);
            let app = apps
                .iter()
                .find(|a| a.name() == $app_name)
                .expect("app registered");
            check_inter(app.as_ref());
        }
    };
}

intra_test!(fft_all_configs, "FFT");
intra_test!(lu_cont_all_configs, "LU cont");
intra_test!(lu_noncont_all_configs, "LU non-cont");
intra_test!(cholesky_all_configs, "Cholesky");
intra_test!(barnes_all_configs, "Barnes");
intra_test!(raytrace_all_configs, "Raytrace");
intra_test!(volrend_all_configs, "Volrend");
intra_test!(ocean_cont_all_configs, "Ocean cont");
intra_test!(ocean_noncont_all_configs, "Ocean non-cont");
intra_test!(water_nsq_all_configs, "Water Nsq");
intra_test!(water_spatial_all_configs, "Water Spatial");

inter_test!(ep_all_configs, "EP");
inter_test!(is_all_configs, "IS");
inter_test!(cg_all_configs, "CG");
inter_test!(jacobi_all_configs, "Jacobi");

/// The update-based Dragon backend runs the full suite. Every app checks
/// its readable final memory against a deterministic host reference —
/// the same values the flat `RefBackend` oracle produces by construction
/// — so a pass here means Dragon's final memory agrees with the oracle
/// bit for bit on every application.
#[test]
fn dragon_runs_the_full_intra_suite() {
    for app in intra_apps(Scale::Test) {
        let req = RunRequest::from_env(app.name(), Config::Intra(IntraConfig::Dragon), Scale::Test)
            .expect("well-formed HIC_* knobs");
        let r = app.run_req(&req);
        assert!(
            r.correct,
            "{} under Dragon computed a wrong result: {}",
            app.name(),
            r.detail
        );
        assert!(r.stats.total_cycles > 0);
    }
}

/// Dragon on the hierarchical machine: cross-block update broadcasts and
/// L3 recalls must preserve every app's host-verified result.
#[test]
fn dragon_runs_the_full_inter_suite() {
    for app in inter_apps(Scale::Test) {
        let req = RunRequest::from_env(app.name(), Config::Inter(InterConfig::Dragon), Scale::Test)
            .expect("well-formed HIC_* knobs");
        let r = app.run_req(&req);
        assert!(
            r.correct,
            "{} under Dragon computed a wrong result: {}",
            app.name(),
            r.detail
        );
        assert!(r.stats.total_cycles > 0);
    }
}
