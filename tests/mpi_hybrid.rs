//! Programming model 1 end to end (paper §IV): MPI across blocks, shared
//! memory inside them. The same hybrid program must compute the same
//! result under the incoherent configurations and under MESI.

use hic_runtime::{Config, InterConfig, MpiWorld, ProgramBuilder};

const THREADS_PER_BLOCK: usize = 8;
const BLOCKS: usize = 4;
const CELLS: u64 = 32; // per block

fn run_hybrid(cfg: InterConfig) -> u32 {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let nthreads = BLOCKS * THREADS_PER_BLOCK;
    let segs: Vec<_> = (0..BLOCKS).map(|_| p.alloc(CELLS + 2)).collect();
    for (b, seg) in segs.iter().enumerate() {
        for i in 0..CELLS + 2 {
            p.init(*seg, i, (b as u32 + 1) * 100 + i as u32);
        }
    }
    let world = MpiWorld::new(&mut p, nthreads, 4);
    let block_bars: Vec<_> = (0..BLOCKS)
        .map(|_| p.barrier_of(THREADS_PER_BLOCK))
        .collect();
    let result = p.alloc(1);

    let out = p.run(nthreads, move |ctx| {
        let t = ctx.tid();
        let block = t / THREADS_PER_BLOCK;
        let local = t % THREADS_PER_BLOCK;
        let seg = segs[block];
        let bar = block_bars[block];
        let chunk = CELLS / THREADS_PER_BLOCK as u64;
        let (lo, hi) = (1 + local as u64 * chunk, 1 + (local as u64 + 1) * chunk);

        for _ in 0..2 {
            // Leaders exchange halo cells over MPI.
            if local == 0 {
                let left_edge = ctx.read(seg, 1);
                let right_edge = ctx.read(seg, CELLS);
                if block > 0 {
                    let peer = (block - 1) * THREADS_PER_BLOCK;
                    world.send(ctx, peer, &[left_edge]);
                    ctx.write(seg, 0, world.recv(ctx, peer, 1)[0]);
                }
                if block + 1 < BLOCKS {
                    let peer = (block + 1) * THREADS_PER_BLOCK;
                    ctx.write(seg, CELLS + 1, world.recv(ctx, peer, 1)[0]);
                    world.send(ctx, peer, &[right_edge]);
                }
            }
            // Shared-memory epoch inside the block.
            ctx.barrier(bar);
            let mut next = Vec::new();
            for i in lo..hi {
                let v = ctx
                    .read(seg, i - 1)
                    .wrapping_add(ctx.read(seg, i))
                    .wrapping_add(ctx.read(seg, i + 1));
                next.push(v / 3);
            }
            ctx.barrier(bar);
            for (k, i) in (lo..hi).enumerate() {
                ctx.write(seg, i, next[k]);
            }
            ctx.barrier(bar);
        }

        // Leaders reduce block checksums to rank 0.
        if local == 0 {
            let mut sum = 0u32;
            for i in 1..=CELLS {
                sum = sum.wrapping_add(ctx.read(seg, i));
            }
            if block == 0 {
                let mut total = sum;
                for b in 1..BLOCKS {
                    total = total.wrapping_add(world.recv(ctx, b * THREADS_PER_BLOCK, 1)[0]);
                }
                ctx.store_unc(result.at(0), total);
            } else {
                world.send(ctx, 0, &[sum]);
            }
        }
    });
    out.peek(result, 0)
}

#[test]
fn hybrid_program_agrees_across_configurations() {
    let reference = run_hybrid(InterConfig::Hcc);
    assert_ne!(reference, 0);
    for cfg in [InterConfig::Base, InterConfig::Addr, InterConfig::AddrL] {
        assert_eq!(
            run_hybrid(cfg),
            reference,
            "hybrid MPI + shared-memory result differs under {}",
            cfg.name()
        );
    }
}

#[test]
fn hybrid_program_is_deterministic() {
    assert_eq!(run_hybrid(InterConfig::Base), run_hybrid(InterConfig::Base));
}
