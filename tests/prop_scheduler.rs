//! Property test for the engine's core picker: the O(log n) heap
//! scheduler is a pure host-side optimization. For any program, the heap
//! scheduler must produce bit-identical simulated results — total
//! cycles, stall ledgers, traffic, and op counts — to the reference
//! O(n) linear scan over `(local time, core id)`.
//!
//! The generator emits deadlock-free programs by construction: every
//! thread runs the same number of rounds, every round ends with a full
//! barrier, and every lock acquire is bracketed with its release.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_machine::RunStats;
use hic_runtime::{Config, IntraConfig, ProgramBuilder, Scheduler, Transport};
use hic_sim::SplitMix64;

const THREADS: usize = 4;
const WORDS: u64 = 64;

#[derive(Debug, Clone)]
enum Action {
    Store {
        idx: u64,
        val: u32,
    },
    Load {
        idx: u64,
    },
    Compute {
        cycles: u64,
    },
    /// Lock-protected read-modify-write of a shared counter.
    Critical {
        bumps: u32,
    },
}

#[derive(Debug, Clone)]
struct Script {
    /// `rounds[r][t]` = actions of thread `t` in round `r`.
    rounds: Vec<Vec<Vec<Action>>>,
}

fn gen_action(rng: &mut SplitMix64) -> Action {
    match rng.below(5) {
        0 | 1 => Action::Store {
            idx: rng.below(WORDS),
            val: rng.next_u32(),
        },
        2 => Action::Load {
            idx: rng.below(WORDS),
        },
        3 => Action::Compute {
            cycles: 1 + rng.below(40),
        },
        _ => Action::Critical {
            bumps: 1 + rng.next_u32() % 3,
        },
    }
}

fn gen_script(rng: &mut SplitMix64) -> Script {
    let rounds = (0..1 + rng.below(3))
        .map(|_| {
            (0..THREADS)
                .map(|_| (0..rng.below(9)).map(|_| gen_action(rng)).collect())
                .collect()
        })
        .collect();
    Script { rounds }
}

fn run_with(
    cfg: IntraConfig,
    scheduler: Scheduler,
    transport: Transport,
    script: &Script,
) -> RunStats {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    p.scheduler(scheduler);
    p.transport(transport);
    let data = p.alloc(WORDS);
    let counter = p.alloc(1);
    let l = p.lock_occ(false);
    let bar = p.barrier_of(THREADS);
    let rounds = script.rounds.clone();
    let out = p.run(THREADS, move |ctx| {
        for round in &rounds {
            for action in &round[ctx.tid()] {
                match *action {
                    Action::Store { idx, val } => ctx.write(data, idx, val),
                    Action::Load { idx } => {
                        ctx.read(data, idx);
                    }
                    Action::Compute { cycles } => ctx.compute(cycles),
                    Action::Critical { bumps } => {
                        ctx.lock(l);
                        let v = ctx.read(counter, 0);
                        ctx.write(counter, 0, v + bumps);
                        ctx.unlock(l);
                    }
                }
            }
            ctx.barrier(bar);
        }
    });
    out.stats().clone()
}

/// Heap and linear schedulers agree on every simulated quantity — and on
/// the full engine ledger, since the op stream itself must be identical —
/// for every intra config, under both transports.
#[test]
fn schedulers_are_observationally_identical() {
    let mut rng = SplitMix64::new(0x5C4D);
    for case in 0..6 {
        let script = gen_script(&mut rng);
        for cfg in IntraConfig::ALL {
            for transport in [Transport::Sync, Transport::Batched { cap: 64 }] {
                let linear = run_with(cfg, Scheduler::Linear, transport, &script);
                let heap = run_with(cfg, Scheduler::Heap, transport, &script);
                let tag = format!("case {case}, {} {transport:?}", cfg.name());
                assert_eq!(
                    heap.total_cycles, linear.total_cycles,
                    "{tag}: scheduler changed simulated time"
                );
                assert_eq!(
                    heap.ledgers, linear.ledgers,
                    "{tag}: scheduler changed stall ledgers"
                );
                assert_eq!(
                    heap.traffic, linear.traffic,
                    "{tag}: scheduler changed traffic"
                );
                assert_eq!(
                    heap.engine, linear.engine,
                    "{tag}: scheduler changed the engine ledger"
                );
            }
        }
    }
}
