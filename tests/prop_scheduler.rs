//! Property test for the engine's core picker: the O(log n) heap
//! scheduler is a pure host-side optimization. For any program, the heap
//! scheduler must produce bit-identical simulated results — total
//! cycles, stall ledgers, traffic, and op counts — to the reference
//! O(n) linear scan over `(local time, core id)`.
//!
//! The generator emits deadlock-free programs by construction: every
//! thread runs the same number of rounds, every round ends with a full
//! barrier, and every lock acquire is bracketed with its release.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_machine::RunStats;
use hic_runtime::{
    CheckMode, Config, FaultPlan, IntraConfig, ProgramBuilder, Scheduler, Transport,
};
use hic_sim::{EngineStats, SplitMix64, TopologyBuilder};

const THREADS: usize = 4;
const WORDS: u64 = 64;

#[derive(Debug, Clone)]
enum Action {
    Store {
        idx: u64,
        val: u32,
    },
    Load {
        idx: u64,
    },
    Compute {
        cycles: u64,
    },
    /// Lock-protected read-modify-write of a shared counter.
    Critical {
        bumps: u32,
    },
}

#[derive(Debug, Clone)]
struct Script {
    /// `rounds[r][t]` = actions of thread `t` in round `r`.
    rounds: Vec<Vec<Vec<Action>>>,
}

fn gen_action(rng: &mut SplitMix64) -> Action {
    match rng.below(5) {
        0 | 1 => Action::Store {
            idx: rng.below(WORDS),
            val: rng.next_u32(),
        },
        2 => Action::Load {
            idx: rng.below(WORDS),
        },
        3 => Action::Compute {
            cycles: 1 + rng.below(40),
        },
        _ => Action::Critical {
            bumps: 1 + rng.next_u32() % 3,
        },
    }
}

fn gen_script(rng: &mut SplitMix64) -> Script {
    let rounds = (0..1 + rng.below(3))
        .map(|_| {
            (0..THREADS)
                .map(|_| (0..rng.below(9)).map(|_| gen_action(rng)).collect())
                .collect()
        })
        .collect();
    Script { rounds }
}

fn run_with(
    cfg: IntraConfig,
    scheduler: Scheduler,
    transport: Transport,
    script: &Script,
) -> RunStats {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    p.scheduler(scheduler);
    p.transport(transport);
    let data = p.alloc(WORDS);
    let counter = p.alloc(1);
    let l = p.lock_occ(false);
    let bar = p.barrier_of(THREADS);
    let rounds = script.rounds.clone();
    let out = p.run(THREADS, move |ctx| {
        for round in &rounds {
            for action in &round[ctx.tid()] {
                match *action {
                    Action::Store { idx, val } => ctx.write(data, idx, val),
                    Action::Load { idx } => {
                        ctx.read(data, idx);
                    }
                    Action::Compute { cycles } => ctx.compute(cycles),
                    Action::Critical { bumps } => {
                        ctx.lock(l);
                        let v = ctx.read(counter, 0);
                        ctx.write(counter, 0, v + bumps);
                        ctx.unlock(l);
                    }
                }
            }
            ctx.barrier(bar);
        }
    });
    out.stats().clone()
}

/// The sharded engine's host-side counters (shard-local op counts,
/// cross-shard messages, lookahead stalls, lock waits) are legitimately
/// nonzero only under `Scheduler::Sharded`; every *simulated* engine
/// quantity must still match the sequential ledger exactly. Zero the
/// host-only fields so full-struct equality compares the rest.
fn simulated_engine_view(e: &EngineStats) -> EngineStats {
    EngineStats {
        shard_local_ops: 0,
        cross_shard_msgs: 0,
        lookahead_stalls: 0,
        lock_waits: 0,
        per_shard: Vec::new(),
        ..e.clone()
    }
}

/// Assert that two runs are observationally identical: simulated time,
/// stall ledgers, traffic categories, and the simulated engine ledger.
fn assert_same_sim(tag: &str, got: &RunStats, oracle: &RunStats) {
    assert_eq!(
        got.total_cycles, oracle.total_cycles,
        "{tag}: engine changed simulated time"
    );
    assert_eq!(
        got.ledgers, oracle.ledgers,
        "{tag}: engine changed stall ledgers"
    );
    assert_eq!(got.traffic, oracle.traffic, "{tag}: engine changed traffic");
    assert_eq!(
        simulated_engine_view(&got.engine),
        simulated_engine_view(&oracle.engine),
        "{tag}: engine changed the simulated op ledger"
    );
}

/// Heap and linear schedulers agree on every simulated quantity — and on
/// the full engine ledger, since the op stream itself must be identical —
/// for every intra config, under both transports.
#[test]
fn schedulers_are_observationally_identical() {
    let mut rng = SplitMix64::new(0x5C4D);
    for case in 0..6 {
        let script = gen_script(&mut rng);
        for cfg in IntraConfig::ALL {
            for transport in [Transport::Sync, Transport::Batched { cap: 64 }] {
                let linear = run_with(cfg, Scheduler::Linear, transport, &script);
                let heap = run_with(cfg, Scheduler::Heap, transport, &script);
                let tag = format!("case {case}, {} {transport:?}", cfg.name());
                assert_eq!(
                    heap.total_cycles, linear.total_cycles,
                    "{tag}: scheduler changed simulated time"
                );
                assert_eq!(
                    heap.ledgers, linear.ledgers,
                    "{tag}: scheduler changed stall ledgers"
                );
                assert_eq!(
                    heap.traffic, linear.traffic,
                    "{tag}: scheduler changed traffic"
                );
                assert_eq!(
                    heap.engine, linear.engine,
                    "{tag}: scheduler changed the engine ledger"
                );
            }
        }
    }
}

/// The parallel-in-host sharded engine is a pure host-side optimization
/// too: for random deadlock-free programs it must reproduce the linear
/// scheduler's results bit-for-bit — simulated cycles, every stall
/// ledger, every traffic category, and the simulated op ledger — for
/// every intra config, under both transports.
#[test]
fn sharded_engine_is_observationally_identical() {
    let mut rng = SplitMix64::new(0x5AAD);
    for case in 0..6 {
        let script = gen_script(&mut rng);
        for cfg in IntraConfig::ALL {
            for transport in [Transport::Sync, Transport::Batched { cap: 64 }] {
                let linear = run_with(cfg, Scheduler::Linear, transport, &script);
                let sharded = run_with(cfg, Scheduler::Sharded { shards: 4 }, transport, &script);
                let tag = format!("case {case}, {} {transport:?}", cfg.name());
                assert_same_sim(&tag, &sharded, &linear);
            }
        }
    }
}

/// Shard-count extremes: one shard (fully serialized mailboxes) and far
/// more shards than host cores or simulated cores (oversubscription —
/// `shards` is clamped to the core count). Both must still match the
/// linear oracle exactly.
#[test]
fn sharded_engine_shard_count_extremes_are_identical() {
    let mut rng = SplitMix64::new(0x5AAE);
    for case in 0..3 {
        let script = gen_script(&mut rng);
        let linear = run_with(
            IntraConfig::BMI,
            Scheduler::Linear,
            Transport::default(),
            &script,
        );
        for shards in [1usize, 64] {
            let sharded = run_with(
                IntraConfig::BMI,
                Scheduler::Sharded { shards },
                Transport::default(),
                &script,
            );
            assert_same_sim(&format!("case {case}, shards={shards}"), &sharded, &linear);
        }
    }
}

/// Run a script on an arbitrary topology/config pair (the flat 4-core
/// harness above hard-codes the paper's intra shape). Threads beyond the
/// script's width replay a rotated column so every core does work.
fn run_geom(config: Config, scheduler: Scheduler, script: &Script) -> RunStats {
    let mut p = ProgramBuilder::new(config);
    p.scheduler(scheduler);
    let nthreads = p.num_threads();
    let data = p.alloc(WORDS);
    let counter = p.alloc(1);
    let l = p.lock_occ(false);
    let bar = p.barrier_of(nthreads);
    let rounds = script.rounds.clone();
    let out = p.run(nthreads, move |ctx| {
        for round in &rounds {
            for action in &round[ctx.tid() % THREADS] {
                match *action {
                    Action::Store { idx, val } => {
                        ctx.write(data, (idx + ctx.tid() as u64) % WORDS, val)
                    }
                    Action::Load { idx } => {
                        ctx.read(data, (idx + ctx.tid() as u64) % WORDS);
                    }
                    Action::Compute { cycles } => ctx.compute(cycles),
                    Action::Critical { bumps } => {
                        ctx.lock(l);
                        let v = ctx.read(counter, 0);
                        ctx.write(counter, 0, v + bumps);
                        ctx.unlock(l);
                    }
                }
            }
            ctx.barrier(bar);
        }
    });
    out.stats().clone()
}

/// The sharded engine is geometry-generic: a hierarchical 8x8x4 machine
/// (8 blocks x 8 cores x 4 L2 banks — 64 cores, a non-paper shape)
/// produces bit-identical results under sharding, including when cores
/// outnumber shards by a non-power-of-two factor.
#[test]
fn sharded_engine_identical_on_8x8x4_inter_geometry() {
    use hic_runtime::InterConfig;
    let topo = TopologyBuilder::new(8, 8)
        .l2_banks_per_block(4)
        .validate()
        .expect("valid shape");
    let mut rng = SplitMix64::new(0x5AAF);
    let script = gen_script(&mut rng);
    let config = Config::Inter(InterConfig::Addr)
        .with_topology(topo)
        .unwrap();
    let linear = run_geom(config, Scheduler::Linear, &script);
    for shards in [3usize, 8] {
        let sharded = run_geom(config, Scheduler::Sharded { shards }, &script);
        assert_same_sim(&format!("8x8 inter, shards={shards}"), &sharded, &linear);
    }
}

/// Fault injection and the incoherence sanitizer both disable the
/// core-local fast path (their observations depend on the global
/// interleaving of *every* op). `Scheduler::Sharded` must transparently
/// serialize in those modes and still match the linear oracle.
#[test]
fn sharded_engine_falls_back_under_faults_and_checker() {
    let mut rng = SplitMix64::new(0x5AB0);
    let script = gen_script(&mut rng);

    // Deterministic fault plan: timing-only perturbations, same seed on
    // both engines.
    for scheduler in [Scheduler::Linear, Scheduler::Sharded { shards: 4 }] {
        let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
        p.scheduler(scheduler);
        p.fault_plan(FaultPlan::from_seed(2026));
        let data = p.alloc(WORDS);
        let bar = p.barrier_of(THREADS);
        let rounds = script.rounds.clone();
        let out = p.run(THREADS, move |ctx| {
            for round in &rounds {
                for action in &round[ctx.tid()] {
                    if let Action::Store { idx, val } = *action {
                        ctx.write(data, idx, val);
                    }
                }
                ctx.barrier(bar);
            }
        });
        assert!(out.result().is_ok(), "faulted run failed: {scheduler:?}");
    }
    let runs: Vec<RunStats> = [Scheduler::Linear, Scheduler::Sharded { shards: 4 }]
        .into_iter()
        .map(|s| {
            let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
            p.scheduler(s);
            p.fault_plan(FaultPlan::from_seed(2026));
            let data = p.alloc(WORDS);
            let bar = p.barrier_of(THREADS);
            let rounds = script.rounds.clone();
            let out = p.run(THREADS, move |ctx| {
                for round in &rounds {
                    for action in &round[ctx.tid()] {
                        if let Action::Store { idx, val } = *action {
                            ctx.write(data, idx, val);
                        }
                    }
                    ctx.barrier(bar);
                }
            });
            out.stats().clone()
        })
        .collect();
    assert_same_sim("fault fallback", &runs[1], &runs[0]);

    // Strict sanitizer mode: race-free scripts must pass cleanly and
    // identically under both engines.
    let strict: Vec<RunStats> = [Scheduler::Linear, Scheduler::Sharded { shards: 4 }]
        .into_iter()
        .map(|s| {
            let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BMI));
            p.scheduler(s);
            p.check_mode(CheckMode::Strict);
            let data = p.alloc(WORDS);
            let counter = p.alloc(1);
            let l = p.lock_occ(false);
            let bar = p.barrier_of(THREADS);
            let rounds = script.rounds.clone();
            let out = p.run(THREADS, move |ctx| {
                for round in &rounds {
                    for action in &round[ctx.tid()] {
                        match *action {
                            Action::Store { idx, val } => ctx.write(data, idx, val),
                            Action::Load { idx } => {
                                ctx.read(data, idx);
                            }
                            Action::Compute { cycles } => ctx.compute(cycles),
                            Action::Critical { bumps } => {
                                ctx.lock(l);
                                let v = ctx.read(counter, 0);
                                ctx.write(counter, 0, v + bumps);
                                ctx.unlock(l);
                            }
                        }
                    }
                    ctx.barrier(bar);
                }
            });
            assert!(out.result().is_ok(), "strict run failed under {s:?}");
            out.stats().clone()
        })
        .collect();
    assert_same_sim("strict-check fallback", &strict[1], &strict[0]);
}

/// Readable memory is part of the observational contract too: final
/// per-word contents after the run must match the linear oracle.
#[test]
fn sharded_engine_preserves_readable_memory() {
    let mut rng = SplitMix64::new(0x5AB1);
    let script = gen_script(&mut rng);
    let mems: Vec<Vec<u32>> = [Scheduler::Linear, Scheduler::Sharded { shards: 4 }]
        .into_iter()
        .map(|s| {
            let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::BM));
            p.scheduler(s);
            let data = p.alloc(WORDS);
            let counter = p.alloc(1);
            let l = p.lock_occ(false);
            let bar = p.barrier_of(THREADS);
            let rounds = script.rounds.clone();
            let out = p.run(THREADS, move |ctx| {
                for round in &rounds {
                    for action in &round[ctx.tid()] {
                        match *action {
                            Action::Store { idx, val } => ctx.write(data, idx, val),
                            Action::Load { idx } => {
                                ctx.read(data, idx);
                            }
                            Action::Compute { cycles } => ctx.compute(cycles),
                            Action::Critical { bumps } => {
                                ctx.lock(l);
                                let v = ctx.read(counter, 0);
                                ctx.write(counter, 0, v + bumps);
                                ctx.unlock(l);
                            }
                        }
                    }
                    ctx.barrier(bar);
                }
            });
            let mut mem = out.peek_all(data);
            mem.push(out.peek(counter, 0));
            mem
        })
        .collect();
    assert_eq!(mems[1], mems[0], "sharded engine changed readable memory");
}
