//! Property-based end-to-end tests for the update-based Dragon backend
//! and for non-paper topologies, mirroring `prop_epochs.rs`.
//!
//! Dragon is hardware-coherent: like MESI it needs no WB/INV
//! annotations, so any data-race-free program must compute exactly what
//! the flat always-fresh reference backend (`RefBackend`) computes. The
//! generator builds random epoch-structured programs (each word has at
//! most one writer per epoch; every thread reads the stable words and
//! checks them against a host-side model) and compares final readable
//! memory word for word.
//!
//! The same harness then runs on a topology the paper never evaluated
//! (8 blocks x 8 cores): the `Topology` refactor's contract is that the
//! simulator is geometry-generic, not specialized to Table III.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_runtime::{Config, InterConfig, IntraConfig, ProgramBuilder};
use hic_sim::{SplitMix64, TopologyBuilder};

const WORDS: usize = 48;

#[derive(Debug, Clone)]
struct EpochProgram {
    threads: usize,
    /// `writers[e][w]` = thread writing word `w` in epoch `e`, if any.
    writers: Vec<Vec<Option<u8>>>,
}

fn gen_program(rng: &mut SplitMix64, threads: usize) -> EpochProgram {
    let epochs = 2 + rng.below(2);
    let writers = (0..epochs)
        .map(|_| {
            (0..WORDS)
                .map(|_| {
                    if rng.unit_f64() < 0.4 {
                        Some(rng.below(threads as u64) as u8)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    EpochProgram { threads, writers }
}

fn value(e: usize, t: u8, w: usize) -> u32 {
    (e as u32 + 1) * 100_000 + (t as u32) * 1000 + w as u32
}

fn host_model(prog: &EpochProgram) -> Vec<Vec<u32>> {
    let mut model = vec![vec![0u32; WORDS]];
    for (e, epoch) in prog.writers.iter().enumerate() {
        let mut next = model[e].clone();
        for (w, wr) in epoch.iter().enumerate() {
            if let Some(t) = wr {
                next[w] = value(e, *t, w);
            }
        }
        model.push(next);
    }
    model
}

/// Run the program on the given builder; panics on any stale read.
/// Returns the final state of the shared array.
fn run_on(mut p: ProgramBuilder, label: &str, prog: &EpochProgram) -> Vec<u32> {
    let threads = prog.threads;
    let data = p.alloc(WORDS as u64);
    let bar = p.barrier_of(threads);
    let writers = prog.writers.clone();

    let model = std::sync::Arc::new(host_model(prog));
    let model2 = std::sync::Arc::clone(&model);
    let label2 = label.to_string();

    let out = p.run(threads, move |ctx| {
        for (e, epoch) in writers.iter().enumerate() {
            for (w, wr) in epoch.iter().enumerate() {
                if wr.is_none() {
                    let got = ctx.read(data, w as u64);
                    let want = model2[e][w];
                    assert_eq!(
                        got, want,
                        "stale read of word {w} in epoch {e} under {label2}"
                    );
                }
            }
            for (w, wr) in epoch.iter().enumerate() {
                if *wr == Some(ctx.tid() as u8) {
                    ctx.write(data, w as u64, value(e, ctx.tid() as u8, w));
                }
            }
            ctx.barrier(bar);
        }
    });

    let last = model.last().unwrap();
    let mut finals = Vec::with_capacity(WORDS);
    for (w, want) in last.iter().enumerate() {
        let got = out.peek(data, w as u64);
        assert_eq!(got, *want, "final word {w} under {label}");
        finals.push(got);
    }
    finals
}

/// Dragon on the single-block machine vs the cache-free oracle: final
/// readable memory must agree word for word.
#[test]
fn dragon_agrees_with_reference_on_random_epoch_programs() {
    let mut rng = SplitMix64::new(0xD7A6_0001);
    for _case in 0..6 {
        let prog = gen_program(&mut rng, 4);
        let oracle = run_on(
            ProgramBuilder::with_reference_backend(Config::Intra(IntraConfig::Base)),
            "reference",
            &prog,
        );
        let dragon = run_on(
            ProgramBuilder::new(Config::Intra(IntraConfig::Dragon)),
            "Dragon",
            &prog,
        );
        assert_eq!(
            dragon, oracle,
            "Dragon disagrees with the reference backend"
        );
    }
}

/// Dragon on the hierarchical machine, with threads spanning blocks
/// (thread `i` is pinned to core `i`; 12 threads cover blocks 0 and 1 of
/// the 4x8 machine): cross-block update broadcasts and L3 recalls must
/// preserve oracle agreement.
#[test]
fn dragon_agrees_with_reference_cross_block() {
    let mut rng = SplitMix64::new(0xD7A6_0002);
    for _case in 0..4 {
        let prog = gen_program(&mut rng, 12);
        let oracle = run_on(
            ProgramBuilder::with_reference_backend(Config::Inter(InterConfig::Base)),
            "reference",
            &prog,
        );
        let dragon = run_on(
            ProgramBuilder::new(Config::Inter(InterConfig::Dragon)),
            "Dragon",
            &prog,
        );
        assert_eq!(
            dragon, oracle,
            "hierarchical Dragon disagrees with the reference backend"
        );
    }
}

/// MESI and Dragon are both hardware-coherent: same values, different
/// timing. Both must match the oracle; their traffic mixes differ.
#[test]
fn dragon_and_mesi_compute_identical_values() {
    let mut rng = SplitMix64::new(0xD7A6_0003);
    for _case in 0..4 {
        let prog = gen_program(&mut rng, 4);
        let mesi = run_on(
            ProgramBuilder::new(Config::Intra(IntraConfig::Hcc)),
            "HCC",
            &prog,
        );
        let dragon = run_on(
            ProgramBuilder::new(Config::Intra(IntraConfig::Dragon)),
            "Dragon",
            &prog,
        );
        assert_eq!(dragon, mesi);
    }
}

/// The epoch harness on a topology the paper never built: 8 blocks x
/// 8 cores (64 cores, 8x8 mesh), threads spanning three blocks, under
/// every inter scheme plus Dragon. The annotations and protocols must be
/// geometry-generic.
#[test]
fn nonpaper_topology_8_blocks_x_8_cores_runs_every_scheme() {
    let topo = TopologyBuilder::new(8, 8).validate().expect("valid shape");
    assert_eq!(topo.num_cores(), 64);
    let mut rng = SplitMix64::new(0xD7A6_0004);
    let prog = gen_program(&mut rng, 20); // cores 0..20 span blocks 0..3
    let oracle = run_on(
        ProgramBuilder::with_reference_backend(
            Config::Inter(InterConfig::Base)
                .with_topology(topo)
                .unwrap(),
        ),
        "reference",
        &prog,
    );
    for scheme in [
        InterConfig::Hcc,
        InterConfig::Dragon,
        InterConfig::Base,
        InterConfig::Addr,
        InterConfig::AddrL,
    ] {
        let config = Config::Inter(scheme).with_topology(topo).unwrap();
        assert_eq!(config.num_threads(), 64);
        let got = run_on(ProgramBuilder::new(config), scheme.name(), &prog);
        assert_eq!(
            got,
            oracle,
            "{} disagrees with the oracle on the 8x8-core topology",
            scheme.name()
        );
    }
}

/// A tiny flat non-paper machine (1 block x 4 cores) runs the intra
/// schemes too — the other end of the geometry range.
#[test]
fn nonpaper_topology_flat_4_cores_runs_every_scheme() {
    let topo = TopologyBuilder::new(1, 4).validate().expect("valid shape");
    let mut rng = SplitMix64::new(0xD7A6_0005);
    let prog = gen_program(&mut rng, 4);
    let oracle = run_on(
        ProgramBuilder::with_reference_backend(
            Config::Intra(IntraConfig::Base)
                .with_topology(topo)
                .unwrap(),
        ),
        "reference",
        &prog,
    );
    for scheme in [
        IntraConfig::Hcc,
        IntraConfig::Dragon,
        IntraConfig::Base,
        IntraConfig::BM,
        IntraConfig::BI,
        IntraConfig::BMI,
    ] {
        let config = Config::Intra(scheme).with_topology(topo).unwrap();
        let got = run_on(ProgramBuilder::new(config), scheme.name(), &prog);
        assert_eq!(
            got,
            oracle,
            "{} disagrees with the oracle on the flat 4-core topology",
            scheme.name()
        );
    }
}
