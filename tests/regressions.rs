//! Regression tests for bugs found (and fixed) during development. Each
//! test encodes the exact scenario that failed, so the bug cannot return
//! silently.

use hic_core::{CohInstr, Target};
use hic_machine::IncoherentSystem;
use hic_mem::{Addr, WordAddr};
use hic_runtime::{Config, InterConfig, ProgramBuilder};
use hic_sim::{CoreId, MachineConfig};

/// Bug 1: the lock annotation placed `INV_L2(ALL)` *before* the acquire
/// on the multi-block machine. The paper's "INV immediately before the
/// acquire" optimization (§IV-A1) is only sound for a private cache: the
/// shared L2 can be re-filled by same-block peers between the INV and the
/// grant, leaving a stale copy that the granted holder then reads. With
/// 32 contended threads this lost counter increments.
#[test]
fn inter_lock_counter_is_exact_under_contention() {
    for cfg in [InterConfig::Base, InterConfig::Addr, InterConfig::AddrL] {
        let mut p = ProgramBuilder::new(Config::Inter(cfg));
        let counter = p.alloc(1);
        let l = p.lock_occ(false);
        let bar = p.barrier_of(32);
        let out = p.run(32, move |ctx| {
            for _ in 0..4 {
                ctx.lock(l);
                let v = ctx.read(counter, 0);
                ctx.write(counter, 0, v + 1);
                ctx.unlock(l);
            }
            ctx.plan_barrier(bar);
        });
        assert_eq!(
            out.peek(counter, 0),
            128,
            "lost increments under {} (stale read in a critical section)",
            cfg.name()
        );
    }
}

/// Bug 2: a word- or range-granularity WB cleaned the *whole* line's
/// dirty bits after transferring only the targeted words, silently losing
/// the co-located updates §III-B promises to preserve.
#[test]
fn partial_wb_preserves_colocated_dirty_words() {
    let mut m = IncoherentSystem::new(MachineConfig::intra_block());
    let w0 = Addr(0x1000).word(); // word 0 of the line
    let w1 = WordAddr(w0.0 + 1); // word 1 of the same line
    m.write(CoreId(0), w0, 111);
    m.write(CoreId(0), w1, 222);
    // Write back ONLY w0.
    m.exec_coh(CoreId(0), CohInstr::wb(Target::word(w0)));
    // w1's dirty bit must survive; a later INV must push it down.
    m.exec_coh(CoreId(0), CohInstr::inv(Target::word(w1)));
    assert_eq!(m.peek_word(w0), 111);
    assert_eq!(
        m.peek_word(w1),
        222,
        "partial WB must not clean words it did not transfer"
    );
}

/// Bug 3 (design-level): an accumulator reset that is never written back
/// lingers dirty in the resetter's L1 and is pushed over newer data by a
/// later self-invalidation. The CG annotation covers the reset with a WB;
/// this test pins the machine-level behavior that makes the WB necessary.
#[test]
fn stale_dirty_word_is_pushed_by_inv_over_newer_data() {
    let mut m = IncoherentSystem::new(MachineConfig::inter_block());
    let w = Addr(0x2000).word();
    // Core 0 writes 0 and NEVER writes it back.
    m.write(CoreId(0), w, 0);
    // Core 8 (another block) writes 5 and publishes it globally.
    m.write(CoreId(8), w, 5);
    m.exec_coh(CoreId(8), CohInstr::wb_l3(Target::word(w)));
    assert_eq!(m.peek_word(w), 5);
    // Core 0's INV pushes its stale dirty zero down: newer data lost.
    // (This is WHY the annotation methodology requires every produced
    // value to be written back at its epoch's end.)
    m.exec_coh(CoreId(0), CohInstr::inv_l2(Target::word(w)));
    assert_eq!(
        m.peek_word(w),
        0,
        "the stale push is the modeled (correct) hardware behavior"
    );
}

/// Compatibility pin for the deprecated PR 3 barrier wrappers: nothing
/// in-repo calls `barrier_hinted` / `barrier_private` anymore (they
/// survive only for external callers), so this test is their sole
/// remaining exercise. Each wrapper must stay observationally identical
/// to the `barrier_with` spelling it deprecates — same simulated
/// cycles, same traffic — or removal/regression would go unnoticed.
#[test]
#[allow(deprecated)]
fn deprecated_barrier_wrappers_match_barrier_with() {
    use hic_runtime::BarrierOpts;

    fn run(cfg: InterConfig, modern: bool) -> hic_machine::RunStats {
        let mut p = ProgramBuilder::new(Config::Inter(cfg));
        let shared = p.alloc(32);
        let scratch = p.alloc(32);
        let bar = p.barrier_of(4);
        let out = p.run(4, move |ctx| {
            let t = ctx.tid() as u64;
            // Publish one slice, sync with a hinted barrier, read a
            // neighbour's slice.
            for i in 0..8 {
                ctx.write(shared, t * 8 + i, (t * 100 + i) as u32);
            }
            let wb = [shared.slice(t * 8, t * 8 + 8)];
            let inv = [shared.slice(((t + 1) % 4) * 8, ((t + 1) % 4) * 8 + 8)];
            if modern {
                ctx.barrier_with(bar, BarrierOpts::hinted(Some(&wb), Some(&inv)));
            } else {
                ctx.barrier_hinted(bar, Some(&wb), Some(&inv));
            }
            let mut sum = 0u32;
            for i in 0..8 {
                sum = sum.wrapping_add(ctx.read(shared, ((t + 1) % 4) * 8 + i));
            }
            ctx.write(scratch, t * 8, sum);
            // Purely private phase: a data-free barrier is enough.
            for i in 1..8 {
                ctx.write(scratch, t * 8 + i, sum.wrapping_add(i as u32));
            }
            if modern {
                ctx.barrier_with(bar, BarrierOpts::none());
            } else {
                ctx.barrier_private(bar);
            }
            ctx.barrier(bar);
        });
        out.result().expect("barrier program completes");
        out.stats().clone()
    }

    for cfg in [InterConfig::Base, InterConfig::Addr, InterConfig::AddrL] {
        let old = run(cfg, false);
        let new = run(cfg, true);
        assert_eq!(
            old.total_cycles,
            new.total_cycles,
            "cycles diverge under {}",
            cfg.name()
        );
        assert_eq!(
            old.traffic,
            new.traffic,
            "traffic diverges under {}",
            cfg.name()
        );
    }
}

/// The hierarchical-reduction EP extension (§VII-C's suggested rewrite)
/// is correct everywhere and actually reduces global WBs under Addr+L.
#[test]
fn hierarchical_ep_localizes_reductions() {
    use hic_apps::inter::ep::EpHier;
    use hic_apps::{App, Scale};
    let app = EpHier::new(Scale::Test);
    let mut counts = Vec::new();
    for cfg in InterConfig::ALL {
        let r = app.run(Config::Inter(cfg));
        assert!(r.correct, "EP-hier wrong under {}", cfg.name());
        counts.push((cfg, r.stats.counters.global_wbs));
    }
    let addr = counts
        .iter()
        .find(|(c, _)| *c == InterConfig::Addr)
        .unwrap()
        .1;
    let addrl = counts
        .iter()
        .find(|(c, _)| *c == InterConfig::AddrL)
        .unwrap()
        .1;
    assert!(
        addrl < addr,
        "hierarchical reduction must let Addr+L localize partial gathers \
         ({addrl} vs {addr} global WBs)"
    );
}
