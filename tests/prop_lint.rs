//! Differential property tests for `hic-lint` against the dynamic
//! sanitizer, on the same random epoch programs as `tests/prop_check.rs`:
//!
//! * the static verifier flags a plan deletion **iff** the dynamic
//!   sanitizer trips on the equivalent run — same finding kind, same
//!   producer/consumer pair, and every dynamic finding inside a static
//!   range;
//! * the optimizer's minimized plans re-verify clean, run finding-free
//!   under strict checking, leave the simulated memory bit-identical,
//!   and strictly reduce WB/INV flit traffic.
//!
//! Randomized with the in-repo deterministic `SplitMix64` (fixed seeds)
//! so failures are reproducible.

use hic_apps::inter::cg::Cg;
use hic_apps::inter::jacobi::Jacobi;
use hic_apps::{App, Scale};
use hic_lint::{lint, optimize};
use hic_mem::Region;
use hic_runtime::{
    CheckMode, CommOp, Config, EpochPlan, FindingKind, InterConfig, PlanOverrides, ProgramBuilder,
    ProgramRecord, RunOutcome,
};
use hic_sim::{SplitMix64, ThreadId};

/// Threads in the program: blocks 0 (cores 0-7) and 1 (core 8), so the
/// random edges cover same-block and cross-block communication.
const N: usize = 9;
/// Words per thread-owned slice (one cache line).
const SLICE: u64 = 16;

/// One planned producer -> consumer transfer in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    p: usize,
    c: usize,
}

/// A random communication schedule: per round, a set of edges with
/// pairwise-distinct producers (so deleting one WB cannot be masked by
/// another WB of the same region in the same round).
fn random_schedule(rng: &mut SplitMix64) -> Vec<Vec<Edge>> {
    let rounds = 2 + (rng.next_u64() % 3) as usize; // 2..=4
    (0..rounds)
        .map(|_| {
            let mut edges: Vec<Edge> = Vec::new();
            let want = 1 + (rng.next_u64() % 5) as usize; // 1..=5
            while edges.len() < want {
                let p = (rng.next_u64() % N as u64) as usize;
                let c = (rng.next_u64() % N as u64) as usize;
                if p == c || edges.iter().any(|e| e.p == p) {
                    continue;
                }
                edges.push(Edge { p, c });
            }
            edges
        })
        .collect()
}

/// Deleted plan entry: (round, edge index, true = the WB half).
type Deletion = Option<(usize, usize, bool)>;

/// The schedule run dynamically under report-mode checking — the same
/// program as `tests/prop_check.rs`.
fn run_schedule(
    cfg: InterConfig,
    schedule: &[Vec<Edge>],
    deletion: Deletion,
) -> hic_runtime::Diagnostics {
    let schedule = schedule.to_vec();
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    p.check_mode(CheckMode::Report);
    let data = p.alloc_named("data", N as u64 * SLICE);
    let bar = p.barrier_of(N);
    let out = p.run(N, move |ctx| {
        let t = ctx.tid();
        let slice_of = |o: usize| data.slice(o as u64 * SLICE, (o as u64 + 1) * SLICE);
        for o in 0..N {
            if o != t {
                for i in 0..SLICE {
                    ctx.read(data, o as u64 * SLICE + i);
                }
            }
        }
        ctx.plan_barrier(bar);
        for (r, edges) in schedule.iter().enumerate() {
            for i in 0..SLICE {
                ctx.write(
                    data,
                    t as u64 * SLICE + i,
                    (r as u32 + 1) * 10_000 + t as u32 * 100 + i as u32,
                );
            }
            let mut wb = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.p == t && deletion != Some((r, ei, true)) {
                    wb = wb.with_wb(CommOp::known(slice_of(e.p), ctx.thread(e.c)));
                }
            }
            ctx.plan_wb(&wb);
            ctx.plan_barrier(bar);
            let mut inv = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.c == t && deletion != Some((r, ei, false)) {
                    inv = inv.with_inv(CommOp::known(slice_of(e.p), ctx.thread(e.p)));
                }
            }
            ctx.plan_inv(&inv);
            for e in edges.iter() {
                if e.c == t {
                    for i in 0..SLICE {
                        ctx.read(data, e.p as u64 * SLICE + i);
                    }
                }
            }
            ctx.plan_barrier(bar);
        }
    });
    out.diagnostics().clone()
}

/// The same schedule as a declarative record: region summaries instead
/// of word loops, identical sync structure and plan call sites.
fn schedule_record(cfg: InterConfig, schedule: &[Vec<Edge>], deletion: Deletion) -> ProgramRecord {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let data = p.alloc_named("data", N as u64 * SLICE);
    let bar = p.barrier_of(N);
    let mut rec = p.record(N);
    let slice_of = |o: usize| data.slice(o as u64 * SLICE, (o as u64 + 1) * SLICE);
    for t in 0..N {
        let mut th = rec.thread(t);
        for o in 0..N {
            if o != t {
                th.reads(slice_of(o));
            }
        }
        th.plan_barrier(bar);
        for (r, edges) in schedule.iter().enumerate() {
            th.writes(slice_of(t));
            let mut wb = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.p == t && deletion != Some((r, ei, true)) {
                    wb = wb.with_wb(CommOp::known(slice_of(e.p), ThreadId(e.c)));
                }
            }
            th.plan_wb(&wb);
            th.plan_barrier(bar);
            let mut inv = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.c == t && deletion != Some((r, ei, false)) {
                    inv = inv.with_inv(CommOp::known(slice_of(e.p), ThreadId(e.p)));
                }
            }
            th.plan_inv(&inv);
            for e in edges.iter() {
                if e.c == t {
                    th.reads(slice_of(e.p));
                }
            }
            th.plan_barrier(bar);
        }
    }
    rec
}

// ---------------------------------------------------------------------
// The static verifier agrees with the dynamic sanitizer
// ---------------------------------------------------------------------

#[test]
fn lint_flags_a_deletion_iff_the_sanitizer_trips() {
    let mut rng = SplitMix64::new(0x11C7_57A7);
    for case in 0..10 {
        let schedule = random_schedule(&mut rng);
        let cfg = if case % 2 == 0 {
            InterConfig::Addr
        } else {
            InterConfig::AddrL
        };

        // Unmodified plans: both sides silent.
        let diag = run_schedule(cfg, &schedule, None);
        let report = lint(&schedule_record(cfg, &schedule, None));
        assert!(diag.is_clean(), "case {case}: {diag:?}");
        assert!(
            report.is_clean(),
            "case {case} ({}) schedule {schedule:?}:\n{}",
            cfg.name(),
            report.render()
        );
        assert!(report.checks > 0, "the verifier did observe the reads");

        // One random deleted WB or INV: both sides flag the same edge,
        // and every dynamic finding lies inside a static range.
        let r = (rng.next_u64() % schedule.len() as u64) as usize;
        let ei = (rng.next_u64() % schedule[r].len() as u64) as usize;
        let drop_wb = rng.next_u64().is_multiple_of(2);
        let edge = schedule[r][ei];
        let deletion = Some((r, ei, drop_wb));
        let diag = run_schedule(cfg, &schedule, deletion);
        let report = lint(&schedule_record(cfg, &schedule, deletion));
        let expect = if drop_wb {
            FindingKind::MissingWb
        } else {
            FindingKind::MissingInv
        };
        assert!(
            diag.count(expect) >= 1,
            "case {case}: the sanitizer missed the deletion: {diag:?}"
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == expect && f.producer.0 == edge.p && f.consumer.0 == edge.c),
            "case {case} ({}) deleted {} of {edge:?} in round {r}; static report:\n{}",
            cfg.name(),
            if drop_wb { "WB" } else { "INV" },
            report.render()
        );
        for f in &diag.findings {
            assert!(
                report.covers(f),
                "case {case}: dynamic finding not statically explained: {f:?}\n{}",
                report.render()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Minimized plans: bit-identical memory, strictly less WB/INV traffic
// ---------------------------------------------------------------------

/// A producer/consumer program with deliberate plan redundancy: the WB
/// plan writes `data` back twice and also writes back a `scratch` region
/// nobody ever reads; the INV plan invalidates `data` twice plus
/// `scratch`, of which the consumer holds no copy. Only one WB and one
/// INV of `data` do any work.
fn redundant_dynamic(cfg: InterConfig, overrides: Option<PlanOverrides>) -> (RunOutcome, Region) {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    p.check_mode(CheckMode::Strict);
    let data = p.alloc_named("data", SLICE);
    let scratch = p.alloc_named("scratch", 4 * SLICE);
    let bar = p.barrier_of(2);
    if let Some(o) = overrides {
        p.override_plans(o);
    }
    let out = p.run(2, move |ctx| {
        let t = ctx.tid();
        if t == 1 {
            for i in 0..SLICE {
                ctx.read(data, i); // warm a (stale-to-be) copy
            }
        }
        ctx.plan_barrier(bar);
        if t == 0 {
            for i in 0..SLICE {
                ctx.write(data, i, 7000 + i as u32);
            }
            for i in 0..4 * SLICE {
                ctx.write(scratch, i, 9000 + i as u32);
            }
            ctx.plan_wb(
                &EpochPlan::new()
                    .with_wb(CommOp::unknown(data))
                    .with_wb(CommOp::unknown(data))
                    .with_wb(CommOp::unknown(scratch)),
            );
        } else {
            ctx.plan_wb(&EpochPlan::new());
        }
        ctx.plan_barrier(bar);
        if t == 1 {
            ctx.plan_inv(
                &EpochPlan::new()
                    .with_inv(CommOp::unknown(data))
                    .with_inv(CommOp::unknown(data))
                    .with_inv(CommOp::unknown(scratch)),
            );
            for i in 0..SLICE {
                ctx.read(data, i);
            }
        } else {
            ctx.plan_inv(&EpochPlan::new());
        }
        ctx.plan_barrier(bar);
    });
    (out, data)
}

/// The redundant program as a record, for the optimizer.
fn redundant_record(cfg: InterConfig) -> ProgramRecord {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let data = p.alloc_named("data", SLICE);
    let scratch = p.alloc_named("scratch", 4 * SLICE);
    let bar = p.barrier_of(2);
    let mut rec = p.record(2);
    {
        let mut th = rec.thread(0);
        th.plan_barrier(bar);
        th.writes(data);
        th.writes(scratch);
        th.plan_wb(
            &EpochPlan::new()
                .with_wb(CommOp::unknown(data))
                .with_wb(CommOp::unknown(data))
                .with_wb(CommOp::unknown(scratch)),
        );
        th.plan_barrier(bar);
        th.plan_inv(&EpochPlan::new());
        th.plan_barrier(bar);
    }
    {
        let mut th = rec.thread(1);
        th.reads(data);
        th.plan_barrier(bar);
        th.plan_wb(&EpochPlan::new());
        th.plan_barrier(bar);
        th.plan_inv(
            &EpochPlan::new()
                .with_inv(CommOp::unknown(data))
                .with_inv(CommOp::unknown(data))
                .with_inv(CommOp::unknown(scratch)),
        );
        th.reads(data);
        th.plan_barrier(bar);
    }
    rec
}

#[test]
fn minimized_plans_keep_memory_bit_identical_and_cut_flits() {
    for cfg in [InterConfig::Addr, InterConfig::AddrL] {
        let rec = redundant_record(cfg);
        let out = optimize(&rec);
        assert!(
            out.report.is_clean(),
            "{}:\n{}",
            cfg.name(),
            out.report.render()
        );
        assert!(
            out.reverify.is_clean(),
            "{}:\n{}",
            cfg.name(),
            out.reverify.render()
        );
        assert!(!out.stats.fallback);
        // 6 planned ops; only one WB and one INV of `data` survive.
        assert_eq!(out.stats.ops_before, 6, "{}", cfg.name());
        assert_eq!(out.stats.ops_after, 2, "{}: {:?}", cfg.name(), out.stats);
        assert_eq!(out.stats.pruned, 4, "{}: {:?}", cfg.name(), out.stats);

        // Both runs are under strict checking: a single stale read would
        // abort. The minimized plans must leave the readable memory
        // bit-identical and strictly reduce WB flit traffic (the pruned
        // scratch WB moved 4 dirty lines).
        let (base, data) = redundant_dynamic(cfg, None);
        let (opt, _) = redundant_dynamic(cfg, Some(out.overrides));
        assert!(opt.diagnostics().is_clean());
        assert_eq!(
            base.peek_all(data),
            opt.peek_all(data),
            "{}: minimized plans changed the result",
            cfg.name()
        );
        let (tb, to) = (base.traffic(), opt.traffic());
        assert!(
            to.writeback < tb.writeback,
            "{}: writeback flits {} !< {}",
            cfg.name(),
            to.writeback,
            tb.writeback
        );
        assert!(
            to.invalidation <= tb.invalidation,
            "{}: invalidation flits grew",
            cfg.name()
        );
    }
}

// ---------------------------------------------------------------------
// Optimized app plans: correct, finding-free, cheaper
// ---------------------------------------------------------------------

/// Record -> optimize -> re-run with the minimized plans installed at
/// the same call sites, under `HIC_CHECK=strict` (any stale read
/// aborts). The optimized run must still match the host reference,
/// execute strictly fewer WB/INV instructions, and never spend more
/// WB/INV flits. `expect_flit_cut` additionally requires a strict flit
/// reduction — true where the minimized plans drop or downgrade ops
/// that moved real data, false where everything pruned was already a
/// machine-level no-op (an INV of absent copies costs instructions and
/// plan-issue time, not flits).
fn check_optimized_app(app: &dyn App, config: Config, expect_flit_cut: bool) {
    std::env::set_var("HIC_CHECK", "strict");
    let rec = app.record(config).expect("app has a recorded form");
    let out = optimize(&rec);
    assert!(
        out.report.is_clean(),
        "{} {}:\n{}",
        app.name(),
        config.name(),
        out.report.render()
    );
    assert!(out.reverify.is_clean());
    assert!(!out.stats.fallback);
    assert!(
        out.stats.ops_after < out.stats.ops_before,
        "{} {}: nothing optimized: {:?}",
        app.name(),
        config.name(),
        out.stats
    );

    let base = app.run_with(config, None);
    let opt = app.run_with(config, Some(out.overrides));
    assert!(
        base.correct,
        "{} {}: {}",
        app.name(),
        config.name(),
        base.detail
    );
    assert!(
        opt.correct,
        "{} {} with minimized plans: {}",
        app.name(),
        config.name(),
        opt.detail
    );
    assert!(opt.diagnostics.is_clean(), "{:?}", opt.diagnostics);

    let (cb, co) = (&base.stats.counters, &opt.stats.counters);
    let base_ops = cb.local_wbs + cb.global_wbs + cb.local_invs + cb.global_invs;
    let opt_ops = co.local_wbs + co.global_wbs + co.local_invs + co.global_invs;
    assert!(
        opt_ops < base_ops,
        "{} {}: executed WB/INV instructions {} !< {}",
        app.name(),
        config.name(),
        opt_ops,
        base_ops
    );

    let (tb, to) = (&base.stats.traffic, &opt.stats.traffic);
    assert!(
        to.writeback + to.invalidation <= tb.writeback + tb.invalidation,
        "{} {}: WB+INV flits grew: {} > {}",
        app.name(),
        config.name(),
        to.writeback + to.invalidation,
        tb.writeback + tb.invalidation
    );
    if expect_flit_cut {
        assert!(
            to.writeback + to.invalidation < tb.writeback + tb.invalidation,
            "{} {}: WB+INV flits {} !< {}",
            app.name(),
            config.name(),
            to.writeback + to.invalidation,
            tb.writeback + tb.invalidation
        );
    }
}

#[test]
fn optimized_jacobi_is_correct_clean_and_cheaper() {
    // Jacobi's prunable ops are the first-iteration INVs of halo rows no
    // thread has copies of yet: instruction and plan-issue savings, no
    // flits moved either way.
    for cfg in [InterConfig::Addr, InterConfig::AddrL] {
        check_optimized_app(&Jacobi::new(Scale::Test), Config::Inter(cfg), false);
    }
}

#[test]
fn optimized_cg_is_correct_clean_and_cheaper() {
    // Under Addr+L the optimizer downgrades CG's scalar INVs for
    // block-0 readers from global to block-local, a real flit cut.
    check_optimized_app(
        &Cg::new(Scale::Test),
        Config::Inter(InterConfig::AddrL),
        true,
    );
}
