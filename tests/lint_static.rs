//! Static counterpart of `tests/check_sanitizer.rs`: every seeded
//! protocol bug the dynamic sanitizer flags at runtime must be proven by
//! `hic-lint` from the program's [`ProgramRecord`] alone — same finding
//! kind, same producer/consumer pair, and a word range containing every
//! faulty address the sanitizer observed — before a single cycle is
//! simulated. The unmodified shapes must lint clean.
//!
//! Each shape exists twice here, built from one shared plan source: a
//! dynamic run (exactly the check_sanitizer program, under
//! `CheckMode::Report`) and a record with the same epoch structure.

use hic_lint::lint;
use hic_mem::Region;
use hic_runtime::{
    CheckMode, CommOp, Config, EpochPlan, FindingKind, FlagOpts, InterConfig, IntraConfig,
    ProgramBuilder, ProgramRecord, RunOutcome,
};
use hic_sim::ThreadId;

/// Words per boundary line a thread exchanges with one neighbor.
const LINE: u64 = 16;
/// Words each thread owns: a left boundary line + a right boundary line.
const OWN: u64 = 2 * LINE;

/// What to sabotage in the Jacobi-shape program.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Seeded {
    Nothing,
    /// Producer `p` "forgets" the WB of its boundary toward consumer `c`.
    DropWb {
        p: usize,
        c: usize,
    },
    /// Consumer `c` "forgets" the INV of producer `p`'s boundary.
    DropInv {
        p: usize,
        c: usize,
    },
}

fn left_line(grid: Region, o: u64) -> Region {
    grid.slice(o * OWN, o * OWN + LINE)
}

fn right_line(grid: Region, o: u64) -> Region {
    grid.slice(o * OWN + LINE, o * OWN + OWN)
}

/// Thread `t`'s per-round WB/INV plans under the seeding — the single
/// plan source both the dynamic run and the record draw from, so the
/// two cannot drift.
fn round_plans(grid: Region, n: usize, t: usize, seeded: Seeded) -> (EpochPlan, EpochPlan) {
    let mut wb = EpochPlan::new();
    if t > 0 && seeded != (Seeded::DropWb { p: t, c: t - 1 }) {
        wb = wb.with_wb(CommOp::known(left_line(grid, t as u64), ThreadId(t - 1)));
    }
    if t + 1 < n && seeded != (Seeded::DropWb { p: t, c: t + 1 }) {
        wb = wb.with_wb(CommOp::known(right_line(grid, t as u64), ThreadId(t + 1)));
    }
    let mut inv = EpochPlan::new();
    if t > 0 && seeded != (Seeded::DropInv { p: t - 1, c: t }) {
        inv = inv.with_inv(CommOp::known(
            right_line(grid, t as u64 - 1),
            ThreadId(t - 1),
        ));
    }
    if t + 1 < n && seeded != (Seeded::DropInv { p: t + 1, c: t }) {
        inv = inv.with_inv(CommOp::known(
            left_line(grid, t as u64 + 1),
            ThreadId(t + 1),
        ));
    }
    (wb, inv)
}

/// The check_sanitizer Jacobi halo-exchange shape, run dynamically under
/// report-mode checking.
fn jacobi_dynamic(cfg: InterConfig, n: usize, rounds: usize, seeded: Seeded) -> RunOutcome {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    p.check_mode(CheckMode::Report);
    let grid = p.alloc_named("grid", n as u64 * OWN);
    let bar = p.barrier_of(n);
    p.run(n, move |ctx| {
        let t = ctx.tid();
        let base = t as u64 * OWN;
        // Warm copies of the neighbor lines this thread will read.
        if t > 0 {
            for i in 0..LINE {
                ctx.read(grid, (t as u64 - 1) * OWN + LINE + i);
            }
        }
        if t + 1 < n {
            for i in 0..LINE {
                ctx.read(grid, (t as u64 + 1) * OWN + i);
            }
        }
        ctx.plan_barrier(bar);
        let (wb, inv) = round_plans(grid, n, t, seeded);
        for r in 0..rounds {
            for i in 0..OWN {
                ctx.write(
                    grid,
                    base + i,
                    (r as u32 + 1) * 100_000 + t as u32 * 100 + i as u32,
                );
            }
            ctx.plan_wb(&wb);
            ctx.plan_barrier(bar);
            ctx.plan_inv(&inv);
            if t > 0 {
                for i in 0..LINE {
                    ctx.read(grid, (t as u64 - 1) * OWN + LINE + i);
                }
            }
            if t + 1 < n {
                for i in 0..LINE {
                    ctx.read(grid, (t as u64 + 1) * OWN + i);
                }
            }
            ctx.plan_barrier(bar);
        }
    })
}

/// The same shape as a declarative record: region-summary reads/writes
/// instead of word loops, identical sync structure and plan call sites.
fn jacobi_record(
    cfg: InterConfig,
    n: usize,
    rounds: usize,
    seeded: Seeded,
) -> (ProgramRecord, Region) {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let grid = p.alloc_named("grid", n as u64 * OWN);
    let bar = p.barrier_of(n);
    let mut rec = p.record(n);
    for t in 0..n {
        let (wb, inv) = round_plans(grid, n, t, seeded);
        let mut th = rec.thread(t);
        if t > 0 {
            th.reads(right_line(grid, t as u64 - 1));
        }
        if t + 1 < n {
            th.reads(left_line(grid, t as u64 + 1));
        }
        th.plan_barrier(bar);
        for _ in 0..rounds {
            th.writes(grid.slice(t as u64 * OWN, t as u64 * OWN + OWN));
            th.plan_wb(&wb);
            th.plan_barrier(bar);
            th.plan_inv(&inv);
            if t > 0 {
                th.reads(right_line(grid, t as u64 - 1));
            }
            if t + 1 < n {
                th.reads(left_line(grid, t as u64 + 1));
            }
            th.plan_barrier(bar);
        }
    }
    (rec, grid)
}

const TASKS: u64 = 3;

/// The check_sanitizer flag-published task-queue shape (Figure 4d), run
/// dynamically under report-mode checking.
fn task_queue_dynamic(cfg: IntraConfig, raw_set: bool, raw_wait: bool) -> RunOutcome {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    p.check_mode(CheckMode::Report);
    let payload = p.alloc_named("payload", TASKS * LINE);
    let flags: Vec<_> = (0..TASKS).map(|_| p.flag()).collect();
    let bar = p.barrier_of(2);
    let set_opts = if raw_set {
        FlagOpts::raw()
    } else {
        FlagOpts::annotated()
    };
    let wait_opts = if raw_wait {
        FlagOpts::raw()
    } else {
        FlagOpts::annotated()
    };
    p.run(2, move |ctx| {
        if ctx.tid() == 1 {
            for i in 0..TASKS * LINE {
                ctx.read(payload, i);
            }
        }
        ctx.barrier_with(bar, hic_runtime::BarrierOpts::none());
        if ctx.tid() == 0 {
            for task in 0..TASKS {
                for i in 0..LINE {
                    ctx.write(payload, task * LINE + i, (task * 1000 + i + 1) as u32);
                }
                ctx.flag_set_opts(flags[task as usize], set_opts);
            }
        } else {
            for task in 0..TASKS {
                ctx.flag_wait_opts(flags[task as usize], wait_opts);
                for i in 0..LINE {
                    ctx.read(payload, task * LINE + i);
                }
            }
        }
    })
}

/// The task-queue shape as a record.
fn task_queue_record(cfg: IntraConfig, raw_set: bool, raw_wait: bool) -> ProgramRecord {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    let payload = p.alloc_named("payload", TASKS * LINE);
    let flags: Vec<_> = (0..TASKS).map(|_| p.flag()).collect();
    let bar = p.barrier_of(2);
    let mut rec = p.record(2);
    {
        let mut th = rec.thread(0);
        th.plan_barrier(bar);
        for task in 0..TASKS {
            th.writes(payload.slice(task * LINE, (task + 1) * LINE));
            th.flag_set(flags[task as usize], raw_set);
        }
    }
    {
        let mut th = rec.thread(1);
        th.reads(payload);
        th.plan_barrier(bar);
        for task in 0..TASKS {
            th.flag_wait(flags[task as usize], raw_wait);
            th.reads(payload.slice(task * LINE, (task + 1) * LINE));
        }
    }
    rec
}

/// Lint the record and require: a finding of `kind` naming exactly the
/// seeded producer/consumer pair, and a static explanation (same kind,
/// same pair, containing word range) for *every* finding the dynamic
/// sanitizer reported on the equivalent run.
fn assert_static_explains_dynamic(
    rec: &ProgramRecord,
    out: &RunOutcome,
    kind: FindingKind,
    producer: usize,
    consumer: usize,
) -> hic_lint::LintReport {
    let report = lint(rec);
    assert!(
        report.errors.is_empty(),
        "record errors: {:?}",
        report.errors
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.kind == kind && f.producer.0 == producer && f.consumer.0 == consumer),
        "expected a static {kind:?} {producer} -> {consumer}; got:\n{}",
        report.render()
    );
    let diag = out.diagnostics();
    assert!(
        diag.count(kind) >= 1,
        "dynamic sanitizer was silent: {diag:?}"
    );
    for f in &diag.findings {
        assert!(
            report.covers(f),
            "dynamic finding has no static explanation: {f:?}\nstatic report:\n{}",
            report.render()
        );
    }
    report
}

// ---------------------------------------------------------------------
// Jacobi shape: seeded missing-WB / missing-INV bugs
// ---------------------------------------------------------------------

#[test]
fn jacobi_record_missing_wb_same_block_is_proven() {
    let seeded = Seeded::DropWb { p: 4, c: 5 };
    let out = jacobi_dynamic(InterConfig::Addr, 9, 2, seeded);
    let (rec, grid) = jacobi_record(InterConfig::Addr, 9, 2, seeded);
    let report = assert_static_explains_dynamic(&rec, &out, FindingKind::MissingWb, 4, 5);
    // The static range is exactly producer 4's right boundary line.
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingWb)
        .unwrap();
    let line = right_line(grid, 4);
    assert!(f.start.0 >= line.start.0, "{f:?}");
    assert!(f.start.0 + f.words <= line.start.0 + line.words, "{f:?}");
    let region = f.region.as_deref().unwrap_or_default();
    assert!(region.starts_with("grid["), "{region}");
    assert!(f.sync_hint.is_some(), "the producer's barrier is the hint");
}

#[test]
fn jacobi_record_missing_wb_cross_block_is_proven() {
    // Threads 7 (block 0) and 8 (block 1) are the cross-block pair.
    for cfg in [InterConfig::Addr, InterConfig::AddrL] {
        let seeded = Seeded::DropWb { p: 8, c: 7 };
        let out = jacobi_dynamic(cfg, 9, 2, seeded);
        let (rec, _) = jacobi_record(cfg, 9, 2, seeded);
        assert_static_explains_dynamic(&rec, &out, FindingKind::MissingWb, 8, 7);
    }
}

#[test]
fn jacobi_record_missing_inv_is_proven() {
    for (cfg, p, c) in [
        (InterConfig::Addr, 3, 4),  // same block
        (InterConfig::AddrL, 3, 4), // same block, level-adaptive
        (InterConfig::AddrL, 7, 8), // cross block
    ] {
        let seeded = Seeded::DropInv { p, c };
        let out = jacobi_dynamic(cfg, 9, 2, seeded);
        let (rec, _) = jacobi_record(cfg, 9, 2, seeded);
        assert_static_explains_dynamic(&rec, &out, FindingKind::MissingInv, p, c);
    }
}

#[test]
fn jacobi_record_unmodified_is_clean() {
    for cfg in [InterConfig::Base, InterConfig::Addr, InterConfig::AddrL] {
        let (rec, _) = jacobi_record(cfg, 9, 3, Seeded::Nothing);
        let report = lint(&rec);
        assert!(report.is_clean(), "{}:\n{}", cfg.name(), report.render());
        assert!(report.checks > 0, "the verifier did observe the reads");
    }
}

// ---------------------------------------------------------------------
// Task-queue shape: raw flag halves
// ---------------------------------------------------------------------

#[test]
fn task_queue_record_raw_set_is_missing_wb() {
    let out = task_queue_dynamic(IntraConfig::Base, true, false);
    let rec = task_queue_record(IntraConfig::Base, true, false);
    let report = assert_static_explains_dynamic(&rec, &out, FindingKind::MissingWb, 0, 1);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingWb)
        .unwrap();
    let region = f.region.as_deref().unwrap_or_default();
    assert!(region.starts_with("payload["), "{region}");
    // The hint names the sync op that should have carried the WB.
    let hint = f.sync_hint.expect("flag-set hint");
    assert!(hint.to_string().contains("flag set"), "{hint}");
}

#[test]
fn task_queue_record_raw_wait_is_missing_inv() {
    let out = task_queue_dynamic(IntraConfig::Base, false, true);
    let rec = task_queue_record(IntraConfig::Base, false, true);
    let report = assert_static_explains_dynamic(&rec, &out, FindingKind::MissingInv, 0, 1);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingInv)
        .unwrap();
    let hint = f.sync_hint.expect("flag-wait hint");
    assert!(hint.to_string().contains("flag wait"), "{hint}");
}

#[test]
fn task_queue_record_annotated_is_clean() {
    for cfg in IntraConfig::ALL {
        if cfg.is_coherent() {
            continue;
        }
        let rec = task_queue_record(cfg, false, false);
        let report = lint(&rec);
        assert!(report.is_clean(), "{}:\n{}", cfg.name(), report.render());
    }
}
