//! Smoke subset of the application suite on non-paper topologies.
//!
//! The `Topology` refactor's contract is that nothing in the stack is
//! specialized to the paper's two machines (1x16 and 4x8). CI runs this
//! file under `HIC_CHECK=strict` (the `geometry-matrix` job), so every
//! run here is also swept by the incoherence sanitizer: a WB/INV policy
//! that is only correct on the paper's shapes fails loudly.
//!
//! Three non-paper shapes, smallest to largest:
//!
//! * 1 block x 4 cores (flat, below the paper's 16);
//! * 2 blocks x 4 cores (hierarchical, the smallest L3 machine);
//! * 8 blocks x 8 cores (64 cores, above the paper's 32).
//!
//! Each runs a two-app smoke subset under one incoherent scheme, MESI
//! (`Hcc`), and the update-based `Dragon` — the same protocol families
//! `bench_host --geometry` sweeps.

use hic_apps::{inter_apps, intra_apps, App, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig};
use hic_sim::TopologyBuilder;

fn smoke(apps: Vec<Box<dyn App>>, names: &[&str]) -> Vec<Box<dyn App>> {
    let picked: Vec<Box<dyn App>> = apps
        .into_iter()
        .filter(|a| names.contains(&a.name()))
        .collect();
    assert_eq!(picked.len(), names.len(), "smoke subset names must match");
    picked
}

fn check(app: &dyn App, config: Config) {
    let r = app.run(config);
    assert!(
        r.correct,
        "{} under {} on {}: {}",
        app.name(),
        config.name(),
        config.topology().shape_label(),
        r.detail
    );
}

#[test]
fn flat_4_core_machine_runs_the_intra_smoke_subset() {
    let topo = TopologyBuilder::new(1, 4).validate().expect("valid shape");
    for scheme in [IntraConfig::BMI, IntraConfig::Hcc, IntraConfig::Dragon] {
        let config = Config::Intra(scheme).with_topology(topo).unwrap();
        for app in smoke(intra_apps(Scale::Test), &["FFT", "Water Nsq"]) {
            check(app.as_ref(), config);
        }
    }
}

#[test]
fn two_block_8_core_machine_runs_the_inter_smoke_subset() {
    let topo = TopologyBuilder::new(2, 4).validate().expect("valid shape");
    for scheme in [InterConfig::AddrL, InterConfig::Hcc, InterConfig::Dragon] {
        let config = Config::Inter(scheme).with_topology(topo).unwrap();
        for app in smoke(inter_apps(Scale::Test), &["EP", "Jacobi"]) {
            check(app.as_ref(), config);
        }
    }
}

#[test]
fn eight_block_64_core_machine_runs_the_inter_smoke_subset() {
    let topo = TopologyBuilder::new(8, 8).validate().expect("valid shape");
    assert_eq!(topo.num_cores(), 64);
    for scheme in [InterConfig::Base, InterConfig::Hcc, InterConfig::Dragon] {
        let config = Config::Inter(scheme).with_topology(topo).unwrap();
        for app in smoke(inter_apps(Scale::Test), &["EP", "Jacobi"]) {
            check(app.as_ref(), config);
        }
    }
}
