//! Cross-cutting invariants of the simulated machines, checked on real
//! application runs.

use hic_apps::{inter_apps, intra_apps, Scale};
use hic_runtime::{Config, InterConfig, IntraConfig};

/// The coherent machine never executes WB/INV instructions: those stall
/// categories must be exactly zero, and coherence invalidation traffic
/// must exist for apps with write sharing.
#[test]
fn hcc_has_no_wb_inv_stall_but_has_invalidation_traffic() {
    let apps = intra_apps(Scale::Test);
    let ocean = apps.iter().find(|a| a.name() == "Ocean cont").unwrap();
    let r = ocean.run(Config::Intra(IntraConfig::Hcc));
    let ledger = r.stats.merged_ledger();
    assert_eq!(ledger.wb, 0);
    assert_eq!(ledger.inv, 0);
    assert!(
        r.stats.traffic.invalidation > 0,
        "a grid solver with shared boundaries must invalidate under MESI"
    );
}

/// The incoherent machine is self-invalidation only: it never sends
/// invalidation messages (one of the paper's three traffic savings).
#[test]
fn incoherent_machines_send_zero_invalidation_traffic() {
    let apps = intra_apps(Scale::Test);
    let raytrace = apps.iter().find(|a| a.name() == "Raytrace").unwrap();
    for cfg in [IntraConfig::Base, IntraConfig::BMI] {
        let r = raytrace.run(Config::Intra(cfg));
        assert_eq!(
            r.stats.traffic.invalidation,
            0,
            "incoherent config {} produced invalidation traffic",
            cfg.name()
        );
    }
}

/// Simulations are deterministic: identical program, identical cycle
/// count and traffic, across repeated runs.
#[test]
fn runs_are_deterministic() {
    let apps = intra_apps(Scale::Test);
    let volrend = apps.iter().find(|a| a.name() == "Volrend").unwrap();
    let a = volrend.run(Config::Intra(IntraConfig::BMI));
    let b = volrend.run(Config::Intra(IntraConfig::BMI));
    assert_eq!(a.stats.total_cycles, b.stats.total_cycles);
    assert_eq!(a.stats.traffic, b.stats.traffic);
    assert_eq!(a.stats.counters, b.stats.counters);
}

/// The MEB reduces WB cost in lock-heavy apps: B+M must beat Base on
/// Raytrace (the paper's headline case for the MEB).
#[test]
fn meb_speeds_up_raytrace() {
    let apps = intra_apps(Scale::Test);
    let raytrace = apps.iter().find(|a| a.name() == "Raytrace").unwrap();
    let base = raytrace.run(Config::Intra(IntraConfig::Base));
    let bm = raytrace.run(Config::Intra(IntraConfig::BM));
    assert!(
        bm.stats.total_cycles < base.stats.total_cycles,
        "B+M ({}) must beat Base ({}) on Raytrace",
        bm.stats.total_cycles,
        base.stats.total_cycles
    );
}

/// Figure 11's qualitative claims: reductions (EP, IS) gain nothing from
/// level-adaptive instructions; Jacobi's halo exchange gains a lot; CG
/// keeps its global WBs but drops some global INVs.
#[test]
fn level_adaptive_ratios_match_paper_shape() {
    let apps = inter_apps(Scale::Test);
    for app in &apps {
        let addr = app.run(Config::Inter(InterConfig::Addr));
        let addrl = app.run(Config::Inter(InterConfig::AddrL));
        assert!(addr.correct && addrl.correct);
        let (aw, ai) = (
            addr.stats.counters.global_wbs,
            addr.stats.counters.global_invs,
        );
        let (lw, li) = (
            addrl.stats.counters.global_wbs,
            addrl.stats.counters.global_invs,
        );
        match app.name() {
            "EP" | "IS" => {
                assert_eq!(
                    (aw, ai),
                    (lw, li),
                    "{}: reductions cannot be localized",
                    app.name()
                );
            }
            "Jacobi" => {
                assert!(
                    lw * 2 < aw,
                    "Jacobi global WBs should drop sharply: {lw} vs {aw}"
                );
                assert!(
                    li * 2 < ai,
                    "Jacobi global INVs should drop sharply: {li} vs {ai}"
                );
            }
            "CG" => {
                assert_eq!(lw, aw, "CG writes everything to L3 in both configs");
                assert!(
                    li < ai,
                    "CG's inspector must localize some INVs: {li} vs {ai}"
                );
            }
            other => panic!("unexpected app {other}"),
        }
    }
}

/// The storage model reproduces the paper's ~102 KB saving.
#[test]
fn storage_savings_match_paper() {
    let s = hic_core::storage::savings_kb(&hic_sim::MachineConfig::inter_block());
    assert!((s - 102.0).abs() < 5.0, "expected ~102 KB, got {s:.1}");
}

/// Traffic ledgers are internally consistent: every run moves some data,
/// and the Figure-10 view never exceeds the full total.
#[test]
fn traffic_ledger_consistency() {
    let apps = intra_apps(Scale::Test);
    let fft = apps.iter().find(|a| a.name() == "FFT").unwrap();
    for cfg in IntraConfig::ALL {
        let r = fft.run(Config::Intra(cfg));
        let t = r.stats.traffic;
        assert!(t.total() > 0);
        assert!(t.fig10_total() <= t.total());
        assert!(t.linefill > 0, "every run fills lines");
    }
}
