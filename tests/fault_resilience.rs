//! Metamorphic resilience tests for the seeded fault-injection layer.
//!
//! The paper's correctness story is *timing-independent*: WB/INV
//! placement and synchronization ordering — not hardware timing — make a
//! race-free program correct. These tests exploit that as a metamorphic
//! oracle: any protocol-legal timing perturbation (link jitter, transient
//! slowdowns, dropped-and-retried flits, delayed sync acks) must leave
//! the readable memory of a race-free program bit-identical to the
//! unfaulted run, even though cycles and traffic move. Recoverable
//! bit flips must also preserve results (at the price of recovery
//! traffic), while unrecoverable corruption and liveness failures must
//! surface as typed [`RunError`]s that leave the process reusable.

use hic_runtime::{
    CheckMode, Config, FaultPlan, FaultSpec, IntraConfig, ProgramBuilder, RunError, RunOutcome,
    RunRequest, Scheduler,
};

const NT: usize = 4;
const WORDS: u64 = 256;

/// A sync-heavy, race-free workload: four rounds of produce / barrier /
/// consume-the-neighbor's-chunk, plus a lock-protected global
/// accumulator. Returns the outcome and a snapshot of every readable
/// word the program touched.
fn run_workload(configure: impl FnOnce(&mut ProgramBuilder)) -> (RunOutcome, Vec<u32>) {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    configure(&mut p);
    let data = p.alloc_named("data", WORDS);
    let out = p.alloc_named("out", NT as u64 * 16);
    let total = p.alloc_named("total", 1);
    let bar = p.barrier_of(NT);
    let l = p.lock();
    let outcome = p.run(NT, move |ctx| {
        let t = ctx.tid() as u64;
        let chunk = WORDS / NT as u64;
        for round in 0..4u64 {
            for i in 0..chunk {
                ctx.write(data, t * chunk + i, (round * 1000 + t * 100 + i) as u32);
            }
            ctx.barrier(bar);
            let src = ((t + 1) % NT as u64) * chunk;
            let mut sum = 0u32;
            for i in 0..chunk {
                sum = sum.wrapping_add(ctx.read(data, src + i));
            }
            ctx.write(out, t * 16 + round, sum);
            ctx.lock(l);
            let v = ctx.read(total, 0);
            ctx.write(total, 0, v.wrapping_add(sum));
            ctx.unlock(l);
            ctx.barrier(bar);
        }
    });
    let mut snap = outcome.peek_all(data);
    snap.extend(outcome.peek_all(out));
    snap.extend(outcome.peek_all(total));
    (outcome, snap)
}

/// The headline metamorphic invariant: for ≥ 8 random timing-only fault
/// plans, readable memory is bit-identical to the unfaulted run. Timing
/// itself must actually move (otherwise the plans tested nothing).
#[test]
fn timing_only_fault_plans_leave_readable_memory_bit_identical() {
    let (base, base_snap) = run_workload(|_| {});
    assert!(base.result().is_ok());
    let mut cycles_moved = 0usize;
    let mut faults_fired = 0u64;
    for seed in 1..=8u64 {
        let plan = FaultPlan::timing_only(seed);
        let (faulted, snap) = run_workload(|p| {
            p.fault_plan(plan);
        });
        assert!(
            faulted.result().is_ok(),
            "timing-only plan seed={seed} killed the run: {:?}",
            faulted.result()
        );
        assert_eq!(
            snap, base_snap,
            "timing-only plan seed={seed} changed readable memory"
        );
        let r = faulted.stats().resilience;
        faults_fired += r.retries + r.delayed_acks;
        if faulted.stats().total_cycles != base.stats().total_cycles {
            cycles_moved += 1;
        }
    }
    assert!(
        cycles_moved > 0,
        "no plan changed the cycle count — the perturbations were inert"
    );
    assert!(
        faults_fired > 0,
        "no drop or ack delay ever fired across 8 seeds"
    );
}

/// Installing a plan with every amplitude at zero must be bit-identical
/// to installing nothing — cycles *and* traffic.
#[test]
fn zero_fault_plan_is_bit_identical_to_no_plan() {
    let (base, base_snap) = run_workload(|_| {});
    let (zeroed, snap) = run_workload(|p| {
        p.fault_plan(FaultPlan::zero(12345));
    });
    assert!(zeroed.result().is_ok());
    assert_eq!(snap, base_snap);
    assert_eq!(zeroed.stats().total_cycles, base.stats().total_cycles);
    assert_eq!(zeroed.stats().traffic, base.stats().traffic);
    assert_eq!(zeroed.stats().ledgers, base.stats().ledgers);
    assert!(zeroed.stats().resilience.is_zero());
    assert_eq!(zeroed.fault_plan(), Some(FaultPlan::zero(12345)));
    assert_eq!(base.fault_plan(), None);
}

/// Dropped flits are recovered by controller-side retry: results are
/// unchanged, and the retries are visible in the resilience ledger.
#[test]
fn dropped_flits_are_retried_and_results_unchanged() {
    let (_, base_snap) = run_workload(|_| {});
    let plan = FaultPlan {
        drop_period: 6,
        retry_timeout: 25,
        max_retries: 3,
        ..FaultPlan::zero(77)
    };
    let (faulted, snap) = run_workload(|p| {
        p.fault_plan(plan);
    });
    assert!(faulted.result().is_ok());
    assert_eq!(snap, base_snap, "retried transfers changed results");
    let r = faulted.stats().resilience;
    assert!(r.retries > 0, "a 1/6 drop rate never fired: {r:?}");
    assert!(r.retry_flits > 0);
    assert!(r.retry_cycles > 0);
}

/// Bit flips in clean lines are detected by parity and repaired by
/// refetch: results stay bit-identical (even under strict checking) and
/// the repair work is counted as recovery traffic.
#[test]
fn clean_line_bit_flips_recover_under_strict_checking() {
    let (_, base_snap) = run_workload(|_| {});
    let plan = FaultPlan {
        flip_period: 25,
        flip_dirty: false,
        ..FaultPlan::zero(31)
    };
    let (faulted, snap) = run_workload(|p| {
        p.fault_plan(plan);
        p.check_mode(CheckMode::Strict);
    });
    assert!(
        faulted.result().is_ok(),
        "clean-line flips must recover: {:?}",
        faulted.result()
    );
    assert_eq!(snap, base_snap, "a recovered flip leaked into results");
    let r = faulted.stats().resilience;
    assert!(r.bit_flips > 0, "no flip ever fired: {r:?}");
    assert_eq!(r.flips_recovered, r.bit_flips, "every clean flip recovers");
    assert!(r.recovery_flits > 0, "recovery refetch traffic not counted");
}

/// A flip landing in a dirty line destroys the only copy of the data:
/// the run must die with a typed error, never complete silently wrong.
#[test]
fn dirty_line_corruption_is_a_typed_fatal_error() {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    p.fault_plan(FaultPlan {
        flip_period: 1,
        flip_dirty: true,
        ..FaultPlan::zero(9)
    });
    let data = p.alloc(16);
    let outcome = p.run(1, move |ctx| {
        ctx.write(data, 0, 7);
        for _ in 0..64 {
            let _ = ctx.read(data, 0);
        }
    });
    let Err(RunError::CorruptDirtyLine { detail }) = outcome.result() else {
        unreachable!("expected dirty-line corruption, got {:?}", outcome.result());
    };
    assert_eq!(outcome.result().unwrap_err().kind(), "corrupt_dirty_line");
    assert!(detail.contains("parity"), "{detail}");
    assert!(detail.contains("dirty"), "{detail}");
}

/// A two-thread flag program that waits without a set deadlocks: the
/// error names both parked cores and their stall categories — and the
/// process stays fully usable for a subsequent clean run.
#[test]
fn flag_deadlock_returns_typed_error_and_process_stays_usable() {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    let f0 = p.flag();
    let f1 = p.flag();
    let outcome = p.run(2, move |ctx| {
        // Neither flag is ever set: both threads park forever.
        if ctx.tid() == 0 {
            ctx.flag_wait(f0);
        } else {
            ctx.flag_wait(f1);
        }
    });
    let Err(RunError::Deadlock { parked, .. }) = outcome.result() else {
        unreachable!("expected a deadlock, got {:?}", outcome.result());
    };
    assert_eq!(parked.len(), 2, "both cores must be reported: {parked:?}");
    let msg = outcome.result().unwrap_err().to_string();
    assert!(msg.contains("core0"), "{msg}");
    assert!(msg.contains("core1"), "{msg}");

    // The failed run was torn down gracefully: the same process must be
    // able to run a clean program to completion.
    let (clean, snap) = run_workload(|_| {});
    assert!(clean.result().is_ok());
    assert!(!snap.is_empty());
}

/// Like [`run_workload`], but each thread prefix-sums its own freshly
/// written chunk *before* the barrier — so reads land on locally-dirty
/// lines, the case only epoch-checkpoint rollback (not refetch) can
/// repair.
fn run_rmw_workload(configure: impl FnOnce(&mut ProgramBuilder)) -> (RunOutcome, Vec<u32>) {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    configure(&mut p);
    let data = p.alloc_named("data", WORDS);
    let out = p.alloc_named("out", NT as u64 * 16);
    let bar = p.barrier_of(NT);
    let outcome = p.run(NT, move |ctx| {
        let t = ctx.tid() as u64;
        let chunk = WORDS / NT as u64;
        for round in 0..4u64 {
            for i in 0..chunk {
                ctx.write(data, t * chunk + i, (round * 1000 + t * 100 + i) as u32);
            }
            // Read-after-write on the thread's own dirty lines.
            for i in 1..chunk {
                let prev = ctx.read(data, t * chunk + i - 1);
                let cur = ctx.read(data, t * chunk + i);
                ctx.write(data, t * chunk + i, prev.wrapping_add(cur));
            }
            ctx.barrier(bar);
            let src = ((t + 1) % NT as u64) * chunk;
            let mut sum = 0u32;
            for i in 0..chunk {
                sum = sum.wrapping_add(ctx.read(data, src + i));
            }
            ctx.write(out, t * 16 + round, sum);
            ctx.barrier(bar);
        }
    });
    let mut snap = outcome.peek_all(data);
    snap.extend(outcome.peek_all(out));
    (outcome, snap)
}

/// The tentpole invariant: dirty-line corruption under a recovery plan
/// is repaired by checkpoint restore + replay — readable memory stays
/// bit-identical to the zero-fault run (even under strict checking),
/// rollbacks are counted, and no `CorruptDirtyLine` ever surfaces.
#[test]
fn corrupting_recoverable_plans_roll_back_and_preserve_results() {
    let (_, base_snap) = run_rmw_workload(|_| {});
    let mut total_rollbacks = 0u64;
    for seed in 1..=6u64 {
        let plan = FaultPlan::corrupting_recoverable(seed);
        let (faulted, snap) = run_rmw_workload(|p| {
            p.fault_plan(plan);
            p.check_mode(CheckMode::Strict);
        });
        assert!(
            faulted.result().is_ok(),
            "recovery plan seed={seed} killed the run: {:?}",
            faulted.result()
        );
        assert_eq!(
            snap, base_snap,
            "recovery plan seed={seed} changed readable memory"
        );
        let r = faulted.stats().resilience;
        total_rollbacks += r.rollbacks;
        assert!(
            r.checkpoint_words > 0,
            "seed={seed}: dirty lines were written but never checkpointed: {r:?}"
        );
        if r.rollbacks > 0 {
            assert!(r.rollback_cycles > 0, "seed={seed}: free rollbacks: {r:?}");
        }
    }
    assert!(
        total_rollbacks > 0,
        "no dirty-line flip ever fired across 6 seeds — the plans tested nothing"
    );
}

/// An aggressive custom recovery plan: every ~40th read flips a bit,
/// dirty lines included. The run must still complete bit-identical,
/// with a substantial rollback ledger. (At this rate the probability of
/// a second upset inside a replay window — `replayed/period²` per
/// rollback — is ~1%, so the seeded run below survives; the preceding
/// test pins the fatal that fires when it does not.)
#[test]
fn aggressive_recovery_plan_is_survived_with_counted_rollbacks() {
    let (_, base_snap) = run_rmw_workload(|_| {});
    let plan = FaultPlan {
        flip_period: 40,
        flip_dirty: true,
        recover: true,
        ..FaultPlan::zero(7)
    };
    let (faulted, snap) = run_rmw_workload(|p| {
        p.fault_plan(plan);
    });
    assert!(
        faulted.result().is_ok(),
        "aggressive recovery plan killed the run: {:?}",
        faulted.result()
    );
    assert_eq!(snap, base_snap);
    let r = faulted.stats().resilience;
    assert!(r.rollbacks > 0, "no rollback at a 1/20 flip rate: {r:?}");
    assert!(r.rollback_cycles > 0);
    assert!(r.checkpoint_words > 0);
}

/// Two corruptions in one epoch — a second upset striking the line
/// during its own rollback replay — still surfaces the typed fatal:
/// recovery narrows the fatal's reach, it does not hide real data loss.
#[test]
fn second_corruption_during_replay_is_still_a_typed_fatal() {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    // flip_period == 1: the first dirty read both corrupts the line and
    // deterministically re-corrupts it during the replay window.
    p.fault_plan(FaultPlan {
        flip_period: 1,
        flip_dirty: true,
        recover: true,
        ..FaultPlan::zero(9)
    });
    let data = p.alloc(16);
    let outcome = p.run(1, move |ctx| {
        ctx.write(data, 0, 7);
        for _ in 0..64 {
            let _ = ctx.read(data, 0);
        }
    });
    let Err(RunError::CorruptDirtyLine { detail }) = outcome.result() else {
        unreachable!("expected replay corruption, got {:?}", outcome.result());
    };
    assert!(detail.contains("second upset"), "{detail}");
    assert!(detail.contains("replay"), "{detail}");

    // The failed run tore down cleanly: the same process still recovers
    // a survivable plan afterwards.
    let (clean, snap) = run_rmw_workload(|p| {
        p.fault_plan(FaultPlan::corrupting_recoverable(1));
    });
    assert!(clean.result().is_ok());
    assert!(!snap.is_empty());
}

/// Recovery plans force the sequential engine (PR 7's
/// `supports_sharding` gate): requesting the sharded scheduler must
/// silently fall back, complete, and stay bit-identical.
#[test]
fn sharded_engine_request_falls_back_under_recovery_plan() {
    let (_, base_snap) = run_rmw_workload(|_| {});
    let (faulted, snap) = run_rmw_workload(|p| {
        p.fault_plan(FaultPlan::corrupting_recoverable(3));
        p.scheduler(Scheduler::Sharded { shards: 2 });
    });
    assert!(
        faulted.result().is_ok(),
        "sharded+recovery fallback failed: {:?}",
        faulted.result()
    );
    assert_eq!(snap, base_snap);
}

/// The metamorphic recovery suite over the paper's applications: under
/// the seeded `CorruptingRecover` plan every app still matches its host
/// reference (the zero-fault result) with zero `CorruptDirtyLine`
/// errors, and the suite as a whole performs rollbacks.
#[test]
fn app_suite_survives_corrupting_recoverable_plan() {
    use hic_apps::{inter_apps, intra_apps, Scale};
    use hic_runtime::InterConfig;

    let mut rollbacks = 0u64;
    let mut checkpoint_words = 0u64;
    let mut audit = |name: &str, r: hic_apps::AppRun| {
        assert!(
            r.error.is_none(),
            "{name} died under the recovery plan: {:?}",
            r.error
        );
        assert!(
            r.correct,
            "{name} diverged from host reference: {}",
            r.detail
        );
        rollbacks += r.stats.resilience.rollbacks;
        checkpoint_words += r.stats.resilience.checkpoint_words;
    };
    for app in intra_apps(Scale::Test) {
        let mut req = RunRequest::new(app.name(), Config::Intra(IntraConfig::BMI), Scale::Test);
        req.fault = Some(FaultSpec::CorruptingRecover { seed: 2026 });
        audit(app.name(), app.run_req(&req));
    }
    for app in inter_apps(Scale::Test) {
        let mut req = RunRequest::new(app.name(), Config::Inter(InterConfig::AddrL), Scale::Test);
        req.fault = Some(FaultSpec::CorruptingRecover { seed: 2026 });
        audit(app.name(), app.run_req(&req));
    }
    assert!(
        checkpoint_words > 0,
        "no app ever captured a checkpoint under the recovery plan"
    );
    assert!(
        rollbacks > 0,
        "no app ever rolled back under seed 2026 — the suite tested nothing"
    );
}

/// The simulated-cycle watchdog converts a runaway run into a typed
/// `Hang` instead of burning host time forever.
#[test]
fn watchdog_converts_runaway_run_into_hang_error() {
    let (outcome, _) = run_workload(|p| {
        p.watchdog_cycles(10);
    });
    let Err(RunError::Hang { detail }) = outcome.result() else {
        unreachable!("expected a hang, got {:?}", outcome.result());
    };
    assert!(detail.contains("budget"), "{detail}");
    assert_eq!(outcome.result().unwrap_err().kind(), "hang");
}
