//! Property-based end-to-end test: random epoch-structured data-race-free
//! programs must compute identical results under every configuration.
//!
//! The generator builds programs of `E` epochs over a small shared array:
//! each epoch assigns every word at most one writer thread; every thread
//! then reads all words *not* written in the current epoch and checks them
//! against a host-side model. Barrier-based annotations (programming
//! model 1) must make every such program correct on the incoherent
//! machine; MESI must agree; and the MEB/IEB variants must never change
//! results, only timing.

use proptest::prelude::*;

use hic_runtime::{Config, IntraConfig, ProgramBuilder};

const WORDS: usize = 48;
const THREADS: usize = 4;

#[derive(Debug, Clone)]
struct EpochProgram {
    /// `writers[e][w]` = thread writing word `w` in epoch `e`, if any.
    writers: Vec<Vec<Option<u8>>>,
}

fn arb_program() -> impl Strategy<Value = EpochProgram> {
    let epoch = proptest::collection::vec(
        proptest::option::weighted(0.4, 0u8..THREADS as u8),
        WORDS,
    );
    proptest::collection::vec(epoch, 2..4).prop_map(|writers| EpochProgram { writers })
}

/// The value thread `t` writes to word `w` in epoch `e`.
fn value(e: usize, t: u8, w: usize) -> u32 {
    (e as u32 + 1) * 100_000 + (t as u32) * 1000 + w as u32
}

/// Run the program under one configuration; panics on any stale read.
fn run_under(cfg: IntraConfig, prog: &EpochProgram) {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    let data = p.alloc(WORDS as u64);
    let bar = p.barrier_of(THREADS);
    let writers = prog.writers.clone();

    // Host model: expected value of each word after each epoch.
    let mut model = vec![vec![0u32; WORDS]];
    for (e, epoch) in writers.iter().enumerate() {
        let mut next = model[e].clone();
        for (w, wr) in epoch.iter().enumerate() {
            if let Some(t) = wr {
                next[w] = value(e, *t, w);
            }
        }
        model.push(next);
    }
    let model = std::sync::Arc::new(model);
    let model2 = std::sync::Arc::clone(&model);

    let out = p.run(THREADS, move |ctx| {
        for (e, epoch) in writers.iter().enumerate() {
            // Read phase: everything stable in this epoch must equal the
            // model state after epoch e-1.
            for (w, wr) in epoch.iter().enumerate() {
                if wr.is_none() {
                    let got = ctx.read(data, w as u64);
                    let want = model2[e][w];
                    assert_eq!(
                        got, want,
                        "stale read of word {w} in epoch {e} under {}",
                        cfg.name()
                    );
                }
            }
            // Write phase: own words only (data-race free by construction).
            for (w, wr) in epoch.iter().enumerate() {
                if *wr == Some(ctx.tid() as u8) {
                    ctx.write(data, w as u64, value(e, ctx.tid() as u8, w));
                }
            }
            ctx.barrier(bar);
        }
    });

    // Final state must match the model everywhere.
    let last = model.last().unwrap();
    for (w, want) in last.iter().enumerate() {
        assert_eq!(out.peek(data, w as u64), *want, "final word {w} under {}", cfg.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Every configuration computes the same (model-checked) result.
    #[test]
    fn epoch_programs_correct_under_all_configs(prog in arb_program()) {
        for cfg in IntraConfig::ALL {
            run_under(cfg, &prog);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// The MEB/IEB are pure performance structures: Base and B+M+I agree
    /// on every observable value (checked inside `run_under`), and both
    /// are deterministic across repetition.
    #[test]
    fn buffers_never_change_results(prog in arb_program()) {
        run_under(IntraConfig::Base, &prog);
        run_under(IntraConfig::BMI, &prog);
        run_under(IntraConfig::BMI, &prog); // determinism smoke
    }
}
