//! Property-based end-to-end test: random epoch-structured data-race-free
//! programs must compute identical results under every configuration.
//!
//! The generator builds programs of `E` epochs over a small shared array:
//! each epoch assigns every word at most one writer thread; every thread
//! then reads all words *not* written in the current epoch and checks them
//! against a host-side model. Barrier-based annotations (programming
//! model 1) must make every such program correct on the incoherent
//! machine; MESI must agree; the MEB/IEB variants must never change
//! results, only timing; and the flat always-fresh reference backend
//! (`RefBackend`) serves as a cache-free oracle for the final state.
//!
//! Randomized with the deterministic in-repo `SplitMix64` (fixed seeds).

use hic_runtime::{Config, IntraConfig, ProgramBuilder};
use hic_sim::SplitMix64;

const WORDS: usize = 48;
const THREADS: usize = 4;

#[derive(Debug, Clone)]
struct EpochProgram {
    /// `writers[e][w]` = thread writing word `w` in epoch `e`, if any.
    writers: Vec<Vec<Option<u8>>>,
}

fn gen_program(rng: &mut SplitMix64) -> EpochProgram {
    let epochs = 2 + rng.below(2);
    let writers = (0..epochs)
        .map(|_| {
            (0..WORDS)
                .map(|_| {
                    // Each word gets a writer with probability 0.4.
                    if rng.unit_f64() < 0.4 {
                        Some(rng.below(THREADS as u64) as u8)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    EpochProgram { writers }
}

/// The value thread `t` writes to word `w` in epoch `e`.
fn value(e: usize, t: u8, w: usize) -> u32 {
    (e as u32 + 1) * 100_000 + (t as u32) * 1000 + w as u32
}

/// Expected value of each word after each epoch.
fn host_model(prog: &EpochProgram) -> Vec<Vec<u32>> {
    let mut model = vec![vec![0u32; WORDS]];
    for (e, epoch) in prog.writers.iter().enumerate() {
        let mut next = model[e].clone();
        for (w, wr) in epoch.iter().enumerate() {
            if let Some(t) = wr {
                next[w] = value(e, *t, w);
            }
        }
        model.push(next);
    }
    model
}

/// Run the program on the given builder; panics on any stale read.
/// Returns the final state of the shared array.
fn run_on(mut p: ProgramBuilder, label: &str, prog: &EpochProgram) -> Vec<u32> {
    let data = p.alloc(WORDS as u64);
    let bar = p.barrier_of(THREADS);
    let writers = prog.writers.clone();

    let model = std::sync::Arc::new(host_model(prog));
    let model2 = std::sync::Arc::clone(&model);
    let label2 = label.to_string();

    let out = p.run(THREADS, move |ctx| {
        for (e, epoch) in writers.iter().enumerate() {
            // Read phase: everything stable in this epoch must equal the
            // model state after epoch e-1.
            for (w, wr) in epoch.iter().enumerate() {
                if wr.is_none() {
                    let got = ctx.read(data, w as u64);
                    let want = model2[e][w];
                    assert_eq!(
                        got, want,
                        "stale read of word {w} in epoch {e} under {label2}"
                    );
                }
            }
            // Write phase: own words only (data-race free by construction).
            for (w, wr) in epoch.iter().enumerate() {
                if *wr == Some(ctx.tid() as u8) {
                    ctx.write(data, w as u64, value(e, ctx.tid() as u8, w));
                }
            }
            ctx.barrier(bar);
        }
    });

    // Final state must match the model everywhere.
    let last = model.last().unwrap();
    let mut finals = Vec::with_capacity(WORDS);
    for (w, want) in last.iter().enumerate() {
        let got = out.peek(data, w as u64);
        assert_eq!(got, *want, "final word {w} under {label}");
        finals.push(got);
    }
    finals
}

fn run_under(cfg: IntraConfig, prog: &EpochProgram) -> Vec<u32> {
    run_on(ProgramBuilder::new(Config::Intra(cfg)), cfg.name(), prog)
}

/// Every configuration computes the same (model-checked) result.
#[test]
fn epoch_programs_correct_under_all_configs() {
    let mut rng = SplitMix64::new(0xE70C);
    for _case in 0..8 {
        let prog = gen_program(&mut rng);
        for cfg in IntraConfig::ALL {
            run_under(cfg, &prog);
        }
    }
}

/// The MEB/IEB are pure performance structures: Base and B+M+I agree
/// on every observable value (checked inside `run_under`), and both
/// are deterministic across repetition.
#[test]
fn buffers_never_change_results() {
    let mut rng = SplitMix64::new(0xE70D);
    for _case in 0..6 {
        let prog = gen_program(&mut rng);
        run_under(IntraConfig::Base, &prog);
        run_under(IntraConfig::BMI, &prog);
        run_under(IntraConfig::BMI, &prog); // determinism smoke
    }
}

/// The flat always-fresh reference backend is the correctness oracle:
/// it can never serve a stale value, so whatever the cache-backed
/// machines compute must agree with it word for word.
#[test]
fn reference_backend_is_an_oracle_for_cached_runs() {
    let mut rng = SplitMix64::new(0xE70E);
    for _case in 0..6 {
        let prog = gen_program(&mut rng);
        let oracle = run_on(
            ProgramBuilder::with_reference_backend(Config::Intra(IntraConfig::Base)),
            "reference",
            &prog,
        );
        for cfg in IntraConfig::ALL {
            let got = run_under(cfg, &prog);
            assert_eq!(
                got,
                oracle,
                "{} disagrees with the reference backend",
                cfg.name()
            );
        }
    }
}
