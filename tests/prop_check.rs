//! Property test for the incoherence sanitizer: on randomly generated
//! epoch programs (model 2, §V), deleting any single WB or INV edge from
//! the communication plan must always trip the sanitizer with the right
//! finding kind, while the unmodified plan never trips it.
//!
//! Randomized with the in-repo deterministic `SplitMix64` (fixed seeds,
//! no external RNG crates) so failures are reproducible.

use hic_runtime::{CheckMode, CommOp, Config, EpochPlan, FindingKind, InterConfig, ProgramBuilder};
use hic_sim::SplitMix64;

/// Threads in the program: blocks 0 (cores 0-7) and 1 (core 8), so the
/// random edges cover same-block and cross-block communication.
const N: usize = 9;
/// Words per thread-owned slice (one cache line).
const SLICE: u64 = 16;

/// One planned producer -> consumer transfer in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    p: usize,
    c: usize,
}

/// A random communication schedule: per round, a set of edges with
/// pairwise-distinct producers (so deleting one WB cannot be masked by
/// another WB of the same region in the same round).
fn random_schedule(rng: &mut SplitMix64) -> Vec<Vec<Edge>> {
    let rounds = 2 + (rng.next_u64() % 3) as usize; // 2..=4
    (0..rounds)
        .map(|_| {
            let mut edges: Vec<Edge> = Vec::new();
            let want = 1 + (rng.next_u64() % 5) as usize; // 1..=5
            while edges.len() < want {
                let p = (rng.next_u64() % N as u64) as usize;
                let c = (rng.next_u64() % N as u64) as usize;
                if p == c || edges.iter().any(|e| e.p == p) {
                    continue;
                }
                edges.push(Edge { p, c });
            }
            edges
        })
        .collect()
}

/// Deleted plan entry: (round, edge index, true = the WB half).
type Deletion = Option<(usize, usize, bool)>;

/// Run the schedule: every round, each thread rewrites its own slice,
/// write-backs it once per planned consumer, and after the barrier each
/// consumer invalidates and reads its planned producers' slices. The
/// warm-up pass gives every thread a (stale-to-be) copy of every slice,
/// which is what the INVs must keep fresh.
fn run_schedule(
    cfg: InterConfig,
    schedule: &[Vec<Edge>],
    deletion: Deletion,
) -> hic_runtime::Diagnostics {
    let schedule = schedule.to_vec();
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    p.check_mode(CheckMode::Report);
    let data = p.alloc_named("data", N as u64 * SLICE);
    let bar = p.barrier_of(N);
    let out = p.run(N, move |ctx| {
        let t = ctx.tid();
        let slice_of = |o: usize| data.slice(o as u64 * SLICE, (o as u64 + 1) * SLICE);
        for o in 0..N {
            if o != t {
                for i in 0..SLICE {
                    ctx.read(data, o as u64 * SLICE + i);
                }
            }
        }
        ctx.plan_barrier(bar);
        for (r, edges) in schedule.iter().enumerate() {
            // Write phase: a fresh value every round.
            for i in 0..SLICE {
                ctx.write(
                    data,
                    t as u64 * SLICE + i,
                    (r as u32 + 1) * 10_000 + t as u32 * 100 + i as u32,
                );
            }
            let mut wb = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.p == t && deletion != Some((r, ei, true)) {
                    wb = wb.with_wb(CommOp::known(slice_of(e.p), ctx.thread(e.c)));
                }
            }
            ctx.plan_wb(&wb);
            ctx.plan_barrier(bar);
            // Read phase: consumers invalidate, then read.
            let mut inv = EpochPlan::new();
            for (ei, e) in edges.iter().enumerate() {
                if e.c == t && deletion != Some((r, ei, false)) {
                    inv = inv.with_inv(CommOp::known(slice_of(e.p), ctx.thread(e.p)));
                }
            }
            ctx.plan_inv(&inv);
            for e in edges.iter() {
                if e.c == t {
                    for i in 0..SLICE {
                        ctx.read(data, e.p as u64 * SLICE + i);
                    }
                }
            }
            ctx.plan_barrier(bar);
        }
    });
    out.diagnostics().clone()
}

#[test]
fn unmodified_plans_never_trip_the_sanitizer() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..12 {
        let schedule = random_schedule(&mut rng);
        let cfg = if case % 2 == 0 {
            InterConfig::Addr
        } else {
            InterConfig::AddrL
        };
        let diag = run_schedule(cfg, &schedule, None);
        assert!(
            diag.is_clean(),
            "case {case} ({}) schedule {schedule:?}: {diag:?}",
            cfg.name()
        );
        assert!(diag.checks > 0, "the sanitizer did observe the reads");
    }
}

#[test]
fn deleting_any_wb_or_inv_always_trips_the_sanitizer() {
    let mut rng = SplitMix64::new(0xBADC0DE);
    for case in 0..12 {
        let schedule = random_schedule(&mut rng);
        let cfg = if case % 2 == 0 {
            InterConfig::Addr
        } else {
            InterConfig::AddrL
        };
        // Pick a random plan entry and delete either its WB or its INV.
        let r = (rng.next_u64() % schedule.len() as u64) as usize;
        let ei = (rng.next_u64() % schedule[r].len() as u64) as usize;
        let drop_wb = rng.next_u64().is_multiple_of(2);
        let edge = schedule[r][ei];
        let diag = run_schedule(cfg, &schedule, Some((r, ei, drop_wb)));
        let expect = if drop_wb {
            FindingKind::MissingWb
        } else {
            FindingKind::MissingInv
        };
        assert!(
            diag.count(expect) >= 1,
            "case {case} ({}) deleted {} of {edge:?} in round {r}: {diag:?}",
            cfg.name(),
            if drop_wb { "WB" } else { "INV" },
        );
        // The finding names the sabotaged pair.
        let f = diag.findings.iter().find(|f| f.kind == expect).unwrap();
        assert_eq!(
            (f.actor.0, f.writer.0),
            (edge.c, edge.p),
            "case {case}: {f:?}"
        );
    }
}
