//! End-to-end coverage of the `hic-serve` job server and its
//! `RunRequest` wire contract:
//!
//! * the canonical cache key round-trips through `parse_key`, including
//!   requests assembled from the environment knobs;
//! * an identical resubmission is answered from the result cache with
//!   bit-identical statistics;
//! * a watchdog-killed job reports `hang` and the server keeps serving;
//! * a corrupting-fault job fails with its typed error without
//!   disturbing concurrently queued clean jobs;
//! * concurrent submissions from many client threads all complete;
//! * the socket frontend serves the full protocol over a real
//!   `UnixStream`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use hic_apps::Scale;
use hic_runtime::{CheckMode, Config, FaultSpec, InterConfig, IntraConfig, RunRequest, Scheduler};
use hic_serve::{socket, Json, Server};

fn fft(cfg: IntraConfig) -> RunRequest {
    RunRequest::new("FFT", Config::Intra(cfg), Scale::Test)
}

#[test]
fn cache_keys_round_trip_through_parse_key() {
    // Exercise every optional field at least once.
    let mut reqs = vec![fft(IntraConfig::Base)];
    let mut r = fft(IntraConfig::Hcc);
    r.check = CheckMode::Strict;
    r.fault = Some(FaultSpec::Recoverable { seed: 42 });
    r.engine = Some(Scheduler::Sharded { shards: 4 });
    r.watchdog_cycles = Some(1_000_000);
    r.watchdog_wall_ms = Some(30_000);
    r.budget_ms = Some(250);
    reqs.push(r);
    let mut r = RunRequest::new("EP", Config::Inter(InterConfig::AddrL), Scale::Small);
    r.fault = Some(FaultSpec::Corrupting { seed: 7 });
    r.engine = Some(Scheduler::Linear);
    reqs.push(r);

    for req in reqs {
        let key = req.cache_key();
        let back = RunRequest::parse_key(&key).expect("canonical keys parse");
        assert_eq!(back, req, "parse_key must invert cache_key for {key}");
        assert_eq!(back.cache_key(), key);
    }
}

#[test]
fn env_assembled_requests_serialize_like_explicit_ones() {
    // This integration-test binary owns its process environment; the
    // other tests in this file never read it (run_req disables the env
    // fallback), so setting knobs here cannot race them.
    std::env::set_var("HIC_CHECK", "report");
    std::env::set_var("HIC_FAULTS", "13");
    std::env::set_var("HIC_ENGINE", "sharded:2");
    std::env::set_var("HIC_BENCH_BUDGET_MS", "125");
    let from_env = RunRequest::from_env("FFT", Config::Intra(IntraConfig::Base), Scale::Test)
        .expect("well-formed knobs");
    std::env::remove_var("HIC_CHECK");
    std::env::remove_var("HIC_FAULTS");
    std::env::remove_var("HIC_ENGINE");
    std::env::remove_var("HIC_BENCH_BUDGET_MS");

    let mut explicit = fft(IntraConfig::Base);
    explicit.check = CheckMode::Report;
    explicit.fault = Some(FaultSpec::Recoverable { seed: 13 });
    explicit.engine = Some(Scheduler::Sharded { shards: 2 });
    explicit.budget_ms = Some(125);
    assert_eq!(from_env, explicit);
    assert_eq!(from_env.cache_key(), explicit.cache_key());
}

#[test]
fn resubmission_hits_the_cache_with_bit_identical_stats() {
    let server = Server::start(2, None);
    let (id, cached) = server.submit(fft(IntraConfig::BMI), 0).unwrap();
    assert!(!cached);
    let (first, _) = server.wait(id).unwrap();
    assert!(first.correct, "{}", first.detail);

    let (id2, cached2) = server.submit(fft(IntraConfig::BMI), 0).unwrap();
    assert!(cached2, "identical resubmission must be a cache hit");
    let (second, from_cache) = server.wait(id2).unwrap();
    assert!(from_cache);
    assert!(
        Arc::ptr_eq(&first, &second),
        "cache serves the same outcome"
    );
    assert_eq!(first.cycles, second.cycles);
    assert_eq!(first.traffic, second.traffic);
    assert_eq!(server.stats().cache_hits, 1);
    server.shutdown();
}

#[test]
fn watchdog_killed_jobs_hang_and_the_server_keeps_serving() {
    let server = Server::start(1, None);
    let mut doomed = fft(IntraConfig::Base);
    doomed.watchdog_cycles = Some(10); // no app finishes in 10 cycles
    let (id, cached) = server.submit(doomed, 0).unwrap();
    assert!(!cached);
    let (outcome, _) = server.wait(id).unwrap();
    assert_eq!(outcome.error.as_deref(), Some("hang"));
    assert!(!outcome.correct);

    // Watchdog kills are nondeterministic in principle (the wall-clock
    // variant depends on host load), so they are never cached...
    let (id2, cached2) = {
        let mut doomed = fft(IntraConfig::Base);
        doomed.watchdog_cycles = Some(10);
        server.submit(doomed, 0).unwrap()
    };
    assert!(!cached2, "hangs must not be served from the cache");
    let (outcome2, _) = server.wait(id2).unwrap();
    assert_eq!(outcome2.error.as_deref(), Some("hang"));

    // ...and the worker that delivered them is still alive and serving.
    let (id3, _) = server.submit(fft(IntraConfig::Base), 0).unwrap();
    let (outcome3, _) = server.wait(id3).unwrap();
    assert!(outcome3.correct, "{}", outcome3.detail);
    assert_eq!(outcome3.error, None);
    server.shutdown();
}

#[test]
fn corrupting_faults_fail_typed_without_disturbing_clean_jobs() {
    let server = Server::start(2, None);
    let mut poisoned = RunRequest::new("EP", Config::Inter(InterConfig::Base), Scale::Test);
    poisoned.fault = Some(FaultSpec::Corrupting { seed: 7 });
    let (bad_id, _) = server.submit(poisoned.clone(), 0).unwrap();
    let clean_ids: Vec<_> = IntraConfig::ALL
        .map(|cfg| server.submit(fft(cfg), 0).unwrap().0)
        .to_vec();

    let (bad, _) = server.wait(bad_id).unwrap();
    assert_eq!(bad.error.as_deref(), Some("corrupt_dirty_line"));
    assert!(!bad.correct);
    for id in clean_ids {
        let (outcome, _) = server.wait(id).unwrap();
        assert!(outcome.correct, "{}", outcome.detail);
        assert_eq!(outcome.error, None);
    }

    // The corruption is seeded and deterministic, so the failure itself
    // is a valid cache entry.
    let (_, cached) = server.submit(poisoned, 0).unwrap();
    assert!(cached, "deterministic typed failures are cacheable");
    server.shutdown();
}

#[test]
fn concurrent_submitters_all_complete() {
    let server = Arc::new(Server::start(4, None));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let cfg = IntraConfig::ALL[i % IntraConfig::ALL.len()];
                let (id, _) = server.submit(fft(cfg), i as i64).unwrap();
                let (outcome, _) = server.wait(id).unwrap();
                assert!(outcome.correct, "{}", outcome.detail);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.failed, 0);
    // 8 submissions over 5 distinct keys: the repeats hit the cache
    // unless they raced the first run of their key.
    assert!(stats.cache_hits <= 3);
}

#[test]
fn socket_frontend_serves_the_full_protocol() {
    let path = std::env::temp_dir().join(format!("hic-serve-test-{}.sock", std::process::id()));
    let server = Server::start(2, None);
    let accept_path = path.clone();
    let listener = std::thread::spawn(move || socket::serve(server, &accept_path));

    // The listener may not be bound yet; connecting retries briefly.
    let stream = {
        let mut tries = 0;
        loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) if tries < 100 => {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => panic!("connect {}: {e}", path.display()),
            }
        }
    };
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rpc = |line: String| -> Json {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(&resp).unwrap()
    };

    let key = fft(IntraConfig::Base).cache_key();
    let sub = rpc(format!("{{\"op\":\"submit\",\"key\":\"{key}\"}}"));
    assert_eq!(sub.get("ok"), Some(&Json::Bool(true)), "{sub:?}");
    let id = sub.get("id").and_then(Json::as_u64).unwrap();

    let res = rpc(format!("{{\"op\":\"result\",\"id\":{id}}}"));
    let outcome = res.get("result").unwrap();
    assert_eq!(outcome.get("correct"), Some(&Json::Bool(true)));
    assert_eq!(outcome.get("key").and_then(Json::as_str), Some(&*key));

    let sub2 = rpc(format!("{{\"op\":\"submit\",\"key\":\"{key}\"}}"));
    assert_eq!(sub2.get("cached"), Some(&Json::Bool(true)));

    let bad = rpc("{\"op\":\"submit\",\"key\":\"not a key\"}".to_string());
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));

    let stats = rpc("{\"op\":\"stats\"}".to_string());
    assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));

    let bye = rpc("{\"op\":\"shutdown\"}".to_string());
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    listener.join().unwrap().unwrap();
    assert!(!path.exists(), "socket file is removed on shutdown");
}
