//! End-to-end tests of the incoherence sanitizer (`hic-check`) through
//! the full runtime stack: seeded protocol bugs in the two communication
//! shapes the paper analyzes — barrier/plan epochs (Jacobi halo exchange,
//! §V) and flag-published task queues (Figure 4d) — must be flagged at
//! the first faulty access, with thread/address/epoch diagnostics; the
//! unmodified application suite must stay silent; and checking must not
//! perturb the simulated machine at all.

use hic_mem::Region;
use hic_runtime::{
    CheckMode, CommOp, Config, EpochPlan, FindingKind, FlagOpts, InterConfig, IntraConfig,
    ProgramBuilder, RunOutcome,
};

/// Words per boundary line a thread exchanges with one neighbor.
const LINE: u64 = 16;
/// Words each thread owns: a left boundary line + a right boundary line.
const OWN: u64 = 2 * LINE;

/// What to sabotage in the Jacobi-shape run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Seeded {
    Nothing,
    /// Producer `p` "forgets" the WB of its boundary toward consumer `c`.
    DropWb {
        p: usize,
        c: usize,
    },
    /// Consumer `c` "forgets" the INV of producer `p`'s boundary.
    DropInv {
        p: usize,
        c: usize,
    },
}

/// A Jacobi-style halo exchange on the 4x8 inter-block machine: `n`
/// threads in a chain; each round every thread rewrites its two boundary
/// lines, write-backs each line to the matching neighbor, and after the
/// barrier invalidates + reads its neighbors' facing lines. `seeded`
/// removes exactly one WB or INV edge (in every round).
fn jacobi_shape(
    cfg: InterConfig,
    n: usize,
    rounds: usize,
    seeded: Seeded,
    mode: CheckMode,
) -> (RunOutcome, Region) {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    p.check_mode(mode);
    let grid = p.alloc_named("grid", n as u64 * OWN);
    let bar = p.barrier_of(n);
    let out = p.run(n, move |ctx| {
        let t = ctx.tid();
        let base = t as u64 * OWN;
        // The line thread `o` shows to its left/right neighbor.
        let left_line = |o: u64| grid.slice(o * OWN, o * OWN + LINE);
        let right_line = |o: u64| grid.slice(o * OWN + LINE, o * OWN + OWN);

        // Warm copies of the neighbor lines this thread will read: the
        // per-round INV is what must keep them fresh.
        if t > 0 {
            for i in 0..LINE {
                ctx.read(grid, (t as u64 - 1) * OWN + LINE + i);
            }
        }
        if t + 1 < n {
            for i in 0..LINE {
                ctx.read(grid, (t as u64 + 1) * OWN + i);
            }
        }
        ctx.plan_barrier(bar);

        for r in 0..rounds {
            // Write phase: rewrite both boundary lines.
            for i in 0..OWN {
                ctx.write(
                    grid,
                    base + i,
                    (r as u32 + 1) * 100_000 + t as u32 * 100 + i as u32,
                );
            }
            let mut wb = EpochPlan::new();
            if t > 0 && seeded != (Seeded::DropWb { p: t, c: t - 1 }) {
                wb = wb.with_wb(CommOp::known(left_line(t as u64), ctx.thread(t - 1)));
            }
            if t + 1 < n && seeded != (Seeded::DropWb { p: t, c: t + 1 }) {
                wb = wb.with_wb(CommOp::known(right_line(t as u64), ctx.thread(t + 1)));
            }
            ctx.plan_wb(&wb);
            ctx.plan_barrier(bar);

            // Read phase: invalidate + read the facing neighbor lines.
            let mut inv = EpochPlan::new();
            if t > 0 && seeded != (Seeded::DropInv { p: t - 1, c: t }) {
                inv = inv.with_inv(CommOp::known(right_line(t as u64 - 1), ctx.thread(t - 1)));
            }
            if t + 1 < n && seeded != (Seeded::DropInv { p: t + 1, c: t }) {
                inv = inv.with_inv(CommOp::known(left_line(t as u64 + 1), ctx.thread(t + 1)));
            }
            ctx.plan_inv(&inv);
            if t > 0 {
                for i in 0..LINE {
                    ctx.read(grid, (t as u64 - 1) * OWN + LINE + i);
                }
            }
            if t + 1 < n {
                for i in 0..LINE {
                    ctx.read(grid, (t as u64 + 1) * OWN + i);
                }
            }
            ctx.plan_barrier(bar);
        }
    });
    (out, grid)
}

/// A task-queue shape (Figure 4d): the producer fills a task payload,
/// then publishes it through a flag; the consumer waits on the flag and
/// reads the payload. `raw_set`/`raw_wait` strip the WB / INV half of
/// the protocol from the respective side.
fn task_queue_shape(
    cfg: IntraConfig,
    raw_set: bool,
    raw_wait: bool,
    mode: CheckMode,
) -> (RunOutcome, Region) {
    const TASKS: u64 = 3;
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    p.check_mode(mode);
    let payload = p.alloc_named("payload", TASKS * LINE);
    let flags: Vec<_> = (0..TASKS).map(|_| p.flag()).collect();
    let bar = p.barrier_of(2);
    let set_opts = if raw_set {
        FlagOpts::raw()
    } else {
        FlagOpts::annotated()
    };
    let wait_opts = if raw_wait {
        FlagOpts::raw()
    } else {
        FlagOpts::annotated()
    };
    let out = p.run(2, move |ctx| {
        if ctx.tid() == 1 {
            // Warm stale copies of every payload slot; the flag-side INV
            // must refresh them.
            for i in 0..TASKS * LINE {
                ctx.read(payload, i);
            }
        }
        // Order the warm-up without moving data (the sync protocol under
        // test is the flags').
        ctx.barrier_with(bar, hic_runtime::BarrierOpts::none());
        if ctx.tid() == 0 {
            for task in 0..TASKS {
                for i in 0..LINE {
                    ctx.write(payload, task * LINE + i, (task * 1000 + i + 1) as u32);
                }
                ctx.flag_set_opts(flags[task as usize], set_opts);
            }
        } else {
            for task in 0..TASKS {
                ctx.flag_wait_opts(flags[task as usize], wait_opts);
                for i in 0..LINE {
                    ctx.read(payload, task * LINE + i);
                }
            }
        }
    });
    (out, payload)
}

// ---------------------------------------------------------------------
// Seeded missing-WB / missing-INV bugs: Jacobi shape
// ---------------------------------------------------------------------

#[test]
fn jacobi_missing_wb_same_block_is_flagged() {
    let (out, grid) = jacobi_shape(
        InterConfig::Addr,
        9,
        2,
        Seeded::DropWb { p: 4, c: 5 },
        CheckMode::Report,
    );
    let diag = out.diagnostics();
    assert!(diag.count(FindingKind::MissingWb) >= 1, "{diag:?}");
    let f = diag
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingWb)
        .unwrap();
    assert_eq!(f.actor.0, 5, "the stale reader is the consumer");
    assert_eq!(f.writer.0, 4, "the delinquent writer is the producer");
    let region = f.region.as_deref().unwrap_or_default();
    assert!(region.starts_with("grid["), "{region}");
    // The faulty address lies in producer 4's right boundary line.
    let lo = grid.at(4 * OWN + LINE).0;
    let hi = grid.at(4 * OWN + OWN - 1).0;
    assert!(f.addr.0 >= lo && f.addr.0 <= hi, "{f:?}");
    assert!(f.write_epoch >= 1, "writer epoch recorded");
    assert!(f.at > 0, "faulty-access cycle recorded");
    assert!(f.observed != f.expected);
}

#[test]
fn jacobi_missing_wb_cross_block_is_flagged() {
    // Threads 7 (block 0) and 8 (block 1) are the cross-block pair.
    for cfg in [InterConfig::Addr, InterConfig::AddrL] {
        let (out, _) = jacobi_shape(cfg, 9, 2, Seeded::DropWb { p: 8, c: 7 }, CheckMode::Report);
        let diag = out.diagnostics();
        assert!(
            diag.count(FindingKind::MissingWb) >= 1,
            "{}: {diag:?}",
            cfg.name()
        );
        let f = diag
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::MissingWb)
            .unwrap();
        assert_eq!((f.actor.0, f.writer.0), (7, 8), "{}", cfg.name());
    }
}

#[test]
fn jacobi_missing_inv_is_flagged() {
    for (cfg, p, c) in [
        (InterConfig::Addr, 3, 4),  // same block
        (InterConfig::AddrL, 3, 4), // same block, level-adaptive
        (InterConfig::AddrL, 7, 8), // cross block
    ] {
        let (out, _) = jacobi_shape(cfg, 9, 2, Seeded::DropInv { p, c }, CheckMode::Report);
        let diag = out.diagnostics();
        assert!(
            diag.count(FindingKind::MissingInv) >= 1,
            "{} p={p} c={c}: {diag:?}",
            cfg.name()
        );
        let f = diag
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::MissingInv)
            .unwrap();
        assert_eq!((f.actor.0, f.writer.0), (c, p), "{}", cfg.name());
    }
}

#[test]
fn jacobi_unmodified_is_clean() {
    for cfg in [InterConfig::Addr, InterConfig::AddrL] {
        let (out, _) = jacobi_shape(cfg, 9, 3, Seeded::Nothing, CheckMode::Report);
        assert!(
            out.diagnostics().is_clean(),
            "{}: {:?}",
            cfg.name(),
            out.diagnostics()
        );
    }
}

// ---------------------------------------------------------------------
// Seeded bugs: task-queue shape
// ---------------------------------------------------------------------

#[test]
fn task_queue_raw_set_is_missing_wb() {
    let (out, payload) = task_queue_shape(IntraConfig::Base, true, false, CheckMode::Report);
    let diag = out.diagnostics();
    assert!(diag.count(FindingKind::MissingWb) >= 1, "{diag:?}");
    let f = diag
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingWb)
        .unwrap();
    assert_eq!((f.actor.0, f.writer.0), (1, 0));
    let region = f.region.as_deref().unwrap_or_default();
    assert!(region.starts_with("payload["), "{region}");
    assert!(f.addr.0 >= payload.at(0).0);
    // The hint names the sync operation that should have carried the WB.
    let hint = f.sync_hint.expect("flag-set hint");
    assert!(hint.to_string().contains("flag set"), "{hint}");
}

#[test]
fn task_queue_raw_wait_is_missing_inv() {
    let (out, _) = task_queue_shape(IntraConfig::Base, false, true, CheckMode::Report);
    let diag = out.diagnostics();
    assert!(diag.count(FindingKind::MissingInv) >= 1, "{diag:?}");
    let f = diag
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::MissingInv)
        .unwrap();
    assert_eq!((f.actor.0, f.writer.0), (1, 0));
    let hint = f.sync_hint.expect("flag-wait hint");
    assert!(hint.to_string().contains("flag wait"), "{hint}");
}

#[test]
fn task_queue_annotated_is_clean() {
    for cfg in IntraConfig::ALL {
        if cfg.is_coherent() {
            continue;
        }
        let (out, _) = task_queue_shape(cfg, false, false, CheckMode::Report);
        assert!(
            out.diagnostics().is_clean(),
            "{}: {:?}",
            cfg.name(),
            out.diagnostics()
        );
    }
}

// ---------------------------------------------------------------------
// Strict mode aborts at the faulty access
// ---------------------------------------------------------------------

#[test]
fn strict_mode_aborts_with_a_rendered_diagnostic() {
    let (out, _) = task_queue_shape(IntraConfig::Base, true, false, CheckMode::Strict);
    let err = out
        .result()
        .expect_err("strict checking must abort the buggy run");
    assert_eq!(err.kind(), "check_fatal");
    let msg = err.to_string();
    assert!(msg.contains("incoherence detected"), "{msg}");
    assert!(msg.contains("stale read (missing WB)"), "{msg}");
}

// ---------------------------------------------------------------------
// Checking never perturbs the simulated machine
// ---------------------------------------------------------------------

#[test]
fn report_mode_is_cycle_identical_to_off() {
    let (off, _) = jacobi_shape(InterConfig::Addr, 9, 3, Seeded::Nothing, CheckMode::Off);
    let (rep, _) = jacobi_shape(InterConfig::Addr, 9, 3, Seeded::Nothing, CheckMode::Report);
    assert_eq!(off.stats().total_cycles, rep.stats().total_cycles);
    assert_eq!(off.traffic(), rep.traffic());
    assert_eq!(off.stats().counters, rep.stats().counters);
    assert_eq!(off.stats().ledgers, rep.stats().ledgers);

    let (off, _) = task_queue_shape(IntraConfig::BMI, false, false, CheckMode::Off);
    let (rep, _) = task_queue_shape(IntraConfig::BMI, false, false, CheckMode::Report);
    assert_eq!(off.stats().total_cycles, rep.stats().total_cycles);
    assert_eq!(off.traffic(), rep.traffic());
}

// ---------------------------------------------------------------------
// The unmodified application suite is silent under checking
// ---------------------------------------------------------------------

#[test]
fn app_suite_is_clean_under_report() {
    std::env::set_var("HIC_CHECK", "report");
    use hic_apps::{inter_apps, intra_apps, Scale};
    for app in intra_apps(Scale::Test) {
        for cfg in [IntraConfig::Base, IntraConfig::BMI] {
            let run = app.run(Config::Intra(cfg));
            assert!(run.correct, "{} broke under {}", app.name(), cfg.name());
            assert!(
                run.diagnostics.is_clean(),
                "{} under {}: {:?}",
                app.name(),
                cfg.name(),
                run.diagnostics
            );
        }
    }
    for app in inter_apps(Scale::Test) {
        for cfg in [InterConfig::Addr, InterConfig::AddrL] {
            let run = app.run(Config::Inter(cfg));
            assert!(run.correct, "{} broke under {}", app.name(), cfg.name());
            assert!(
                run.diagnostics.is_clean(),
                "{} under {}: {:?}",
                app.name(),
                cfg.name(),
                run.diagnostics
            );
        }
    }
}
