//! Demonstrates what "hardware-incoherent" actually means: without WB/INV
//! instructions, a consumer simply never sees the producer's update — and
//! how the incoherence sanitizer (`hic-check`) pinpoints the bug at the
//! first faulty access.
//!
//! ```text
//! cargo run --example staleness
//! ```

use hic_core::{CohInstr, Target};
use hic_runtime::{CheckMode, Config, FindingKind, FlagOpts, IntraConfig, ProgramBuilder};

/// The buggy producer/consumer program: the producer signals through the
/// flag WITHOUT the WB half of the Figure 2 protocol (`FlagOpts::raw()`),
/// so its update never leaves the private L1.
fn buggy_run(mode: CheckMode) -> (hic_runtime::RunOutcome, hic_mem::Region) {
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    p.check_mode(mode);
    let x = p.alloc_named("x", 1);
    p.init(x, 0, 1);
    let observed = p.alloc_named("observed", 2);
    let f = p.flag();
    let out = p.run(2, move |ctx| {
        match ctx.tid() {
            0 => {
                // Producer: update x, but signal WITHOUT writing back:
                // the fresh value never leaves this core's L1.
                ctx.store(x.at(0), 2);
                ctx.flag_set_opts(f, FlagOpts::raw());
            }
            _ => {
                let _ = ctx.load(x.at(0)); // warm a (soon stale) copy
                ctx.flag_wait_opts(f, FlagOpts::raw());
                // No INV: this read sees the stale cached copy.
                let stale = ctx.load(x.at(0));
                // Even after a proper self-invalidation the value is
                // still old: the producer never performed its WB half.
                ctx.coh(CohInstr::inv(Target::range(x)));
                let after_inv = ctx.load(x.at(0));
                ctx.store(observed.at(0), stale);
                ctx.store(observed.at(1), after_inv);
                ctx.coh(CohInstr::wb(Target::range(observed)));
            }
        }
    });
    (out, observed)
}

fn main() {
    // --- Part 1: missing annotations leave the consumer stale. --------
    let (out, observed) = buggy_run(CheckMode::Off);
    let stale = out.peek(observed, 0);
    let after_inv = out.peek(observed, 1);
    println!("producer skipped its WB:");
    println!("  consumer read (no INV):   {stale}   <- stale, as expected");
    println!("  consumer read (with INV): {after_inv}   <- still stale: nothing was written back");
    assert_eq!(stale, 1);
    assert_eq!(after_inv, 1);

    // --- Part 2: the sanitizer catches the bug at the faulty access. --
    let (out, _) = buggy_run(CheckMode::Report);
    let diag = out.diagnostics();
    println!("\nunder HIC_CHECK=report the sanitizer explains the bug:");
    for f in &diag.findings {
        println!("  {}", f.render());
    }
    assert!(!diag.is_clean(), "the sanitizer must flag the stale read");
    assert!(
        diag.count(FindingKind::MissingWb) >= 1,
        "the finding names the missing WB (producer side)"
    );

    // --- Part 3: CheckMode::Strict fails the run on the spot. ---------
    let (out, _) = buggy_run(CheckMode::Strict);
    let err = out
        .result()
        .expect_err("strict checking must fail the buggy run");
    println!("\nunder HIC_CHECK=strict the run fails at the stale read:");
    println!(
        "  {}: {}",
        err.kind(),
        err.to_string().lines().next().unwrap()
    );

    // --- Part 4: the correct Figure 2 protocol is silent. -------------
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    p.check_mode(CheckMode::Report);
    let x = p.alloc_named("x", 1);
    p.init(x, 0, 1);
    let observed = p.alloc_named("observed", 1);
    let f = p.flag();
    let out = p.run(2, move |ctx| {
        match ctx.tid() {
            0 => {
                ctx.store(x.at(0), 2);
                // flag_set performs the WB ALL before the set (§IV-A1).
                ctx.flag_set(f);
            }
            _ => {
                let _ = ctx.load(x.at(0)); // warm a stale copy
                                           // flag_wait performs the INV ALL after the wait.
                ctx.flag_wait(f);
                let fresh = ctx.load(x.at(0));
                ctx.store(observed.at(0), fresh);
                ctx.coh(CohInstr::wb(Target::range(observed)));
            }
        }
    });
    println!("\nwith the WB -> sync -> INV protocol of Figure 2:");
    println!("  consumer read: {}   <- fresh", out.peek(observed, 0));
    assert_eq!(out.peek(observed, 0), 2);
    assert!(
        out.diagnostics().is_clean(),
        "correct protocol, no findings"
    );
}
