//! Demonstrates what "hardware-incoherent" actually means: without WB/INV
//! instructions, a consumer simply never sees the producer's update — and
//! with them, the paper's Figure 2 protocol delivers the fresh value.
//!
//! ```text
//! cargo run --example staleness
//! ```

use hic_core::{CohInstr, Target};
use hic_runtime::{Config, IntraConfig, ProgramBuilder};

fn main() {
    // --- Part 1: missing annotations leave the consumer stale. --------
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    let x = p.alloc(1);
    p.init(x, 0, 1);
    let observed = p.alloc(2);
    let f = p.flag();
    let out = p.run(2, move |ctx| {
        match ctx.tid() {
            0 => {
                // Producer: update x, but signal WITHOUT writing back:
                // the fresh value never leaves this core's L1.
                ctx.store(x.at(0), 2);
                ctx.flag_set_raw(f);
            }
            _ => {
                let _ = ctx.load(x.at(0)); // warm a (soon stale) copy
                ctx.flag_wait_raw(f);
                // No INV: this read sees the stale cached copy.
                let stale = ctx.load(x.at(0));
                // Even after a proper self-invalidation the value is
                // still old: the producer never performed its WB half.
                ctx.coh(CohInstr::inv(Target::range(x)));
                let after_inv = ctx.load(x.at(0));
                ctx.store(observed.at(0), stale);
                ctx.store(observed.at(1), after_inv);
                ctx.coh(CohInstr::wb(Target::range(observed)));
            }
        }
    });
    let stale = out.peek(observed, 0);
    let after_inv = out.peek(observed, 1);
    println!("producer skipped its WB:");
    println!("  consumer read (no INV):   {stale}   <- stale, as expected");
    println!("  consumer read (with INV): {after_inv}   <- still stale: nothing was written back");
    assert_eq!(stale, 1);
    assert_eq!(after_inv, 1);

    // --- Part 2: the correct Figure 2 protocol. -----------------------
    let mut p = ProgramBuilder::new(Config::Intra(IntraConfig::Base));
    let x = p.alloc(1);
    p.init(x, 0, 1);
    let observed = p.alloc(1);
    let f = p.flag();
    let out = p.run(2, move |ctx| {
        match ctx.tid() {
            0 => {
                ctx.store(x.at(0), 2);
                // flag_set performs the WB ALL before the set (§IV-A1).
                ctx.flag_set(f);
            }
            _ => {
                let _ = ctx.load(x.at(0)); // warm a stale copy
                                           // flag_wait performs the INV ALL after the wait.
                ctx.flag_wait(f);
                let fresh = ctx.load(x.at(0));
                ctx.store(observed.at(0), fresh);
                ctx.coh(CohInstr::wb(Target::range(observed)));
            }
        }
    });
    println!("with the WB -> sync -> INV protocol of Figure 2:");
    println!("  consumer read: {}   <- fresh", out.peek(observed, 0));
    assert_eq!(out.peek(observed, 0), 2);
}
