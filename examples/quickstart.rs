//! Quickstart: run a 16-thread shared-memory program on the simulated
//! hardware-incoherent machine and on the coherent baseline, and compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Each thread squares its slice of a shared array, then all threads
//! barrier and thread 0 sums the result. The runtime inserts the WB/INV
//! instructions around the barrier automatically (programming model 1).

use hic_runtime::{Config, IntraConfig, ProgramBuilder};

fn run_once(cfg: IntraConfig) -> (u64, u32) {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    let n = 1024u64;
    let data = p.alloc(n);
    p.init_with(data, |i| (i % 100) as u32);
    let bar = p.barrier();
    let result = p.alloc(1);

    let out = p.run(16, move |ctx| {
        let t = ctx.tid() as u64;
        let chunk = n / 16;
        // Epoch 1: square own slice.
        for i in t * chunk..(t + 1) * chunk {
            let v = ctx.read(data, i);
            ctx.write(data, i, v * v);
            ctx.tick(1);
        }
        // The barrier writes back what we wrote and invalidates what we
        // will read (WB ALL / INV ALL under the incoherent configs).
        ctx.barrier(bar);
        // Epoch 2: thread 0 reduces everything the others produced.
        if ctx.tid() == 0 {
            let mut sum = 0u32;
            for i in 0..n {
                sum = sum.wrapping_add(ctx.read(data, i));
            }
            ctx.write(result, 0, sum);
        }
        ctx.barrier(bar);
    });

    (out.stats().total_cycles, out.peek(result, 0))
}

fn main() {
    let expected: u32 = (0..1024u64).map(|i| ((i % 100) * (i % 100)) as u32).sum();
    println!("{:-8} {:>12} {:>12}", "config", "cycles", "checksum");
    for cfg in IntraConfig::ALL {
        let (cycles, sum) = run_once(cfg);
        assert_eq!(sum, expected, "wrong result under {}", cfg.name());
        println!("{:-8} {:>12} {:>12}", cfg.name(), cycles, sum);
    }
    println!("all configurations computed the same checksum ({expected})");
}
