//! The Outside-Critical-section Communication (OCC) pattern of paper
//! §IV-A1 (Figure 4d), and what the MEB/IEB buffers buy for it.
//!
//! A producer creates task payloads *outside* a critical section, then
//! publishes each task's index inside one. Consumers pop indices inside
//! critical sections and process the payloads outside. The run is
//! repeated under every intra-block configuration, printing the cycle
//! counts — the MEB configurations should visibly shorten the critical
//! sections.
//!
//! ```text
//! cargo run --release --example task_queue
//! ```

use hic_runtime::{Config, IntraConfig, ProgramBuilder};

const TASKS: u64 = 64;
const PAYLOAD: u64 = 16; // words per task

fn run_once(cfg: IntraConfig) -> (u64, u64, u32) {
    let mut p = ProgramBuilder::new(Config::Intra(cfg));
    let payload = p.alloc(TASKS * PAYLOAD);
    let head = p.alloc(1); // number of published tasks
    let tail = p.alloc(1); // number of claimed tasks
    let done = p.alloc(16); // per-consumer checksums (word apart)
    let queue = p.lock(); // OCC: payloads cross the CS boundary
    let bar = p.barrier();

    let out = p.run(16, move |ctx| {
        if ctx.tid() == 0 {
            // The producer.
            for t in 0..TASKS {
                for i in 0..PAYLOAD {
                    ctx.write(payload, t * PAYLOAD + i, (t * 1000 + i) as u32);
                    ctx.tick(2);
                }
                ctx.lock(queue);
                ctx.write(head, 0, t as u32 + 1);
                ctx.unlock(queue);
            }
        } else {
            // 15 consumers.
            let mut sum = 0u32;
            loop {
                ctx.lock(queue);
                let h = ctx.read(head, 0) as u64;
                let t = ctx.read(tail, 0) as u64;
                let claimed = if t < h {
                    ctx.write(tail, 0, t as u32 + 1);
                    Some(t)
                } else if t >= TASKS {
                    None
                } else {
                    Some(u64::MAX) // queue momentarily empty: retry
                };
                ctx.unlock(queue);
                match claimed {
                    None => break,
                    Some(u64::MAX) => ctx.compute(50),
                    Some(task) => {
                        // Consume the payload outside the CS: the OCC
                        // annotations make it visible.
                        for i in 0..PAYLOAD {
                            sum = sum.wrapping_add(ctx.read(payload, task * PAYLOAD + i));
                            ctx.tick(2);
                        }
                    }
                }
            }
            ctx.write(done, ctx.tid() as u64 - 1, sum);
        }
        ctx.barrier(bar);
    });

    let total: u32 = (0..15)
        .map(|i| out.peek(done, i))
        .fold(0u32, |a, b| a.wrapping_add(b));
    let ledger = out.stats().merged_ledger();
    (out.stats().total_cycles, ledger.lock, total)
}

fn main() {
    let expected: u32 = (0..TASKS)
        .flat_map(|t| (0..PAYLOAD).map(move |i| (t * 1000 + i) as u32))
        .fold(0u32, |a, b| a.wrapping_add(b));
    println!(
        "{:-8} {:>12} {:>14} checksum",
        "config", "cycles", "lock cycles"
    );
    for cfg in IntraConfig::ALL {
        let (cycles, lock, sum) = run_once(cfg);
        assert_eq!(sum, expected, "lost task payload under {}", cfg.name());
        println!("{:-8} {:>12} {:>14} ok", cfg.name(), cycles, lock);
    }
}
