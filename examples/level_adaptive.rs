//! Programming model 2 end to end: the compiler analysis extracts
//! producer-consumer pairs from an affine program and the level-adaptive
//! WB_CONS / INV_PROD instructions keep same-block communication off the
//! global L3 (paper §V, Figure 7).
//!
//! A 1D stencil runs on the 4-block x 8-core machine under all four
//! inter-block configurations; the run reports how many global (L3-level)
//! WBs and INVs each needed.
//!
//! ```text
//! cargo run --release --example level_adaptive
//! ```

use hic_analysis::{Access, Analyzer, ArrayId, Node, Pattern, Program};
use hic_runtime::{Config, InterConfig, ProgramBuilder};

const N: u64 = 512;
const ITERS: usize = 3;

fn run_once(cfg: InterConfig) -> (u64, u64, u64, bool) {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let nthreads = p.num_threads();
    let a = p.alloc(N);
    let b = p.alloc(N);
    for i in 0..N {
        p.init(a, i, i as u32);
        p.init(b, i, i as u32);
    }
    let bar = p.barrier();

    // What the compiler sees: two sweeps, repeating.
    let stencil = |arr: ArrayId| {
        Access::new(
            arr,
            Pattern::Range {
                scale: 1,
                lo: -1,
                hi: 2,
            },
        )
    };
    let ident = |arr: ArrayId| Access::new(arr, Pattern::ident());
    let program = Program {
        arrays: vec![a, b],
        nodes: vec![
            Node::ParFor {
                iters: N,
                reads: vec![stencil(ArrayId(0))],
                writes: vec![ident(ArrayId(1))],
            },
            Node::ParFor {
                iters: N,
                reads: vec![stencil(ArrayId(1))],
                writes: vec![ident(ArrayId(0))],
            },
        ],
        repeat: true,
    };
    let plans = Analyzer::new(&program, nthreads).analyze();
    let chunks = hic_analysis::Chunks::new(N, nthreads);

    let out = p.run(nthreads, move |ctx| {
        let t = ctx.tid();
        let (lo, hi) = chunks.range(t);
        let grids = [a, b];
        for _ in 0..ITERS {
            for node in 0..2 {
                ctx.plan_inv(&plans.start[node][t]);
                let (src, dst) = (grids[node], grids[1 - node]);
                for i in lo..hi {
                    let left = if i == 0 { 0 } else { ctx.read(src, i - 1) };
                    let right = if i == N - 1 { 0 } else { ctx.read(src, i + 1) };
                    let mid = ctx.read(src, i);
                    ctx.write(dst, i, mid.wrapping_add(left).wrapping_add(right) / 2);
                    ctx.tick(3);
                }
                ctx.plan_wb(&plans.end[node][t]);
                ctx.plan_barrier(bar);
            }
        }
    });

    // Host reference.
    let mut ha: Vec<u32> = (0..N).map(|i| i as u32).collect();
    let mut hb = ha.clone();
    for _ in 0..ITERS {
        for node in 0..2 {
            let (src, dst) = if node == 0 {
                (&ha, &mut hb)
            } else {
                (&hb, &mut ha)
            };
            let mut next = vec![0u32; N as usize];
            for i in 0..N as usize {
                let left = if i == 0 { 0 } else { src[i - 1] };
                let right = if i == N as usize - 1 { 0 } else { src[i + 1] };
                next[i] = src[i].wrapping_add(left).wrapping_add(right) / 2;
            }
            *dst = next;
        }
    }
    let ok = (0..N).all(|i| out.peek(a, i) == ha[i as usize]);
    let c = out.stats().counters;
    (out.stats().total_cycles, c.global_wbs, c.global_invs, ok)
}

fn main() {
    println!(
        "{:-8} {:>12} {:>11} {:>12}  ok",
        "config", "cycles", "global WBs", "global INVs"
    );
    for cfg in InterConfig::ALL {
        let (cycles, gwb, ginv, ok) = run_once(cfg);
        println!(
            "{:-8} {:>12} {:>11} {:>12}  {}",
            cfg.name(),
            cycles,
            gwb,
            ginv,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "wrong result under {}", cfg.name());
    }
    println!("\nAddr+L turns neighbor exchanges between same-block threads into");
    println!("local (L2-level) operations; only block-boundary halos stay global.");
}
