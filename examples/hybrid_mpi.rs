//! Programming model 1 in full (paper §IV): **MPI across blocks, shared
//! memory inside each block**.
//!
//! A 1D halo-exchange stencil on the 4-block x 8-core machine:
//!
//! * each block owns a contiguous segment of the vector; the 8 threads of
//!   a block update it cooperatively with shared-memory epochs (barriers
//!   with automatic WB ALL / INV ALL);
//! * block leaders (thread 0 of each block) exchange halo cells with the
//!   neighboring blocks over the MPI library's uncacheable mailboxes.
//!
//! ```text
//! cargo run --release --example hybrid_mpi
//! ```

use hic_runtime::{Config, InterConfig, MpiWorld, ProgramBuilder};

const CELLS_PER_BLOCK: u64 = 64;
const BLOCKS: usize = 4;
const THREADS_PER_BLOCK: usize = 8;
const ITERS: usize = 4;

fn main() {
    for cfg in [InterConfig::Base, InterConfig::Hcc] {
        let (cycles, checksum) = run_once(cfg);
        println!(
            "{:-6}: {:>9} cycles, checksum {}",
            cfg.name(),
            cycles,
            checksum
        );
    }
}

fn run_once(cfg: InterConfig) -> (u64, u32) {
    let mut p = ProgramBuilder::new(Config::Inter(cfg));
    let nthreads = BLOCKS * THREADS_PER_BLOCK;

    // Per-block segment with two halo cells (index 0 and CELLS+1).
    let segs: Vec<_> = (0..BLOCKS).map(|_| p.alloc(CELLS_PER_BLOCK + 2)).collect();
    for (b, seg) in segs.iter().enumerate() {
        for i in 0..CELLS_PER_BLOCK + 2 {
            p.init(*seg, i, (b as u32 + 1) * 1000 + i as u32);
        }
    }
    // One MPI rank per block (the block leaders are threads 0, 8, 16, 24;
    // ranks are dense 0..4 and map to those leaders).
    let world = MpiWorld::new(&mut p, nthreads, 8);
    // Per-block shared-memory barrier.
    let block_bars: Vec<_> = (0..BLOCKS)
        .map(|_| p.barrier_of(THREADS_PER_BLOCK))
        .collect();
    let checksum_out = p.alloc(1);

    let out = p.run(nthreads, move |ctx| {
        let t = ctx.tid();
        let block = t / THREADS_PER_BLOCK;
        let local = t % THREADS_PER_BLOCK;
        let leader = block * THREADS_PER_BLOCK; // global tid of rank `block`
        let seg = segs[block];
        let bar = block_bars[block];
        let chunk = CELLS_PER_BLOCK / THREADS_PER_BLOCK as u64;
        let (lo, hi) = (1 + local as u64 * chunk, 1 + (local as u64 + 1) * chunk);

        for _ in 0..ITERS {
            // --- MPI phase: leaders exchange halos with neighbors. ---
            if local == 0 {
                let left_edge = ctx.read(seg, 1);
                let right_edge = ctx.read(seg, CELLS_PER_BLOCK);
                // Exchange with the left neighbor block.
                if block > 0 {
                    let peer = leader - THREADS_PER_BLOCK;
                    world.send(ctx, peer, &[left_edge]);
                    let h = world.recv(ctx, peer, 1)[0];
                    ctx.write(seg, 0, h);
                }
                // Exchange with the right neighbor block.
                if block + 1 < BLOCKS {
                    let peer = leader + THREADS_PER_BLOCK;
                    let h = world.recv(ctx, peer, 1)[0];
                    world.send(ctx, peer, &[right_edge]);
                    ctx.write(seg, CELLS_PER_BLOCK + 1, h);
                }
            }
            // --- Shared-memory phase inside the block. ---
            // The barrier publishes the leader's halo writes to the
            // block's other threads (WB ALL / INV ALL under Base).
            ctx.barrier(bar);
            // Everyone updates its chunk from the previous values; read
            // neighbors first, then write (two sub-epochs).
            let mut next = Vec::with_capacity((hi - lo) as usize);
            for i in lo..hi {
                let l = ctx.read(seg, i - 1);
                let r = ctx.read(seg, i + 1);
                let m = ctx.read(seg, i);
                next.push(m.wrapping_add(l).wrapping_add(r) / 3);
                ctx.tick(3);
            }
            ctx.barrier(bar);
            for (k, i) in (lo..hi).enumerate() {
                ctx.write(seg, i, next[k]);
            }
            ctx.barrier(bar);
        }

        // Checksum: leaders reduce their block sums to rank 0 over MPI.
        if local == 0 {
            let mut sum = 0u32;
            for i in 1..=CELLS_PER_BLOCK {
                sum = sum.wrapping_add(ctx.read(seg, i));
            }
            if block == 0 {
                let mut total = sum;
                for b in 1..BLOCKS {
                    let peer = b * THREADS_PER_BLOCK;
                    total = total.wrapping_add(world.recv(ctx, peer, 1)[0]);
                }
                ctx.store(checksum_out.at(0), total);
                ctx.coh(hic_core::CohInstr::wb_l3(hic_core::Target::range(
                    checksum_out,
                )));
            } else {
                world.send(ctx, 0, &[sum]);
            }
        }
    });

    (out.stats().total_cycles, out.peek(checksum_out, 0))
}
